/// \file context.h
/// \brief Per-query execution state: cancellation, deadlines, counters.
///
/// An `ExecContext` is shared by every worker of one query execution. It
/// carries (a) the worker pool, (b) a cooperative stop signal — an explicit
/// `Cancel()` or an armed wall-clock deadline — and (c) atomic progress
/// counters that the engine reads back as an `ExecReport` attached to the
/// query answer. Hot loops (DPLL decisions, sample draws) poll
/// `ShouldStop()` every few dozen iterations; the deadline latch makes the
/// common no-deadline path a single relaxed atomic load.

#ifndef PDB_EXEC_CONTEXT_H_
#define PDB_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace pdb {

class ThreadPool;
class WmcCache;
class IndexCache;
class QueryTrace;
class JoinProfile;

/// Parallelism and time-budget knobs, threaded through `QueryOptions`.
struct ExecOptions {
  /// Worker threads for sampling shards and per-tuple fan-out.
  /// 1 = sequential (no pool), 0 = one per hardware thread.
  int num_threads = 1;
  /// Wall-clock budget in milliseconds; 0 = unlimited. Exact inference that
  /// exceeds the budget degrades to Monte Carlo (see core/pdb.h).
  uint64_t deadline_ms = 0;
};

/// Snapshot of an execution's progress counters and stop state.
struct ExecReport {
  uint64_t tasks_run = 0;       ///< parallel loop bodies executed
  uint64_t samples_drawn = 0;   ///< Monte Carlo samples actually drawn
  uint64_t mc_batches = 0;      ///< Monte Carlo batches completed
  uint64_t cache_hits = 0;      ///< DPLL formula-cache hits (local, NodeId)
  uint64_t dpll_decisions = 0;  ///< DPLL branch decisions
  uint64_t dpll_component_splits = 0;  ///< DPLL connected-component splits
  uint64_t dpll_parallel_splits = 0;   ///< component splits solved in parallel
  uint64_t wmc_shared_hits = 0;    ///< session-shared WMC cache hits
  uint64_t wmc_shared_misses = 0;  ///< session-shared WMC cache misses
  /// Filled only by Session::CumulativeReport() from the cache's own
  /// counters (a single query cannot attribute inserts/evictions to
  /// itself once entries are shared).
  uint64_t wmc_shared_inserts = 0;
  uint64_t wmc_shared_evictions = 0;
  size_t wmc_shared_bytes = 0;  ///< resident bytes of the shared cache
  uint64_t lineage_matches = 0;  ///< CQ join matches enumerated
  uint64_t lineage_nodes = 0;    ///< lineage formula nodes / DNF entries built
  uint64_t index_builds = 0;     ///< hash indexes constructed for grounding
  uint64_t index_cache_hits = 0;  ///< index requests served by the cache
  /// Parallel helper tasks refused by `ThreadPool::TrySubmit` because the
  /// pool was saturated — the work ran inline on the submitting thread
  /// instead (load shed from the pool, never lost).
  uint64_t shed_tasks = 0;
  /// Requests dropped by a server-side admission queue before any engine
  /// work ran. Always 0 for a plain engine query; Session folds the
  /// server's admission drops into its cumulative report through this
  /// field (see Session::NoteAdmissionRejected).
  uint64_t admission_rejected = 0;
  int num_threads = 1;          ///< pool width (1 = sequential)
  bool cancelled = false;       ///< Cancel() was called
  bool deadline_exceeded = false;  ///< a deadline expired at some point

  /// e.g. "4 threads, 131072 samples, 12 tasks, deadline exceeded".
  std::string ToString() const;
};

/// Shared, thread-safe state of one query execution.
class ExecContext {
 public:
  using Clock = std::chrono::steady_clock;

  ExecContext() = default;
  explicit ExecContext(ThreadPool* pool) : pool_(pool) {}

  /// The worker pool, or null for sequential execution.
  ThreadPool* pool() const { return pool_; }
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Session-owned cross-query WMC cache (wmc/wmc_cache.h), or null. The
  /// context only carries the pointer from the session to the counters; it
  /// never dereferences it.
  WmcCache* wmc_cache() const { return wmc_cache_; }
  void set_wmc_cache(WmcCache* cache) { wmc_cache_ = cache; }

  /// Session-owned hash-index cache (storage/index_cache.h), or null when
  /// the caller has no session (each grounding then builds throwaway
  /// indexes). Carried, not owned, like the WMC cache.
  IndexCache* index_cache() const { return index_cache_; }
  void set_index_cache(IndexCache* cache) { index_cache_ = cache; }

  /// Opt-in per-query trace (obs/trace.h), or null when tracing is off.
  /// Deep modules test this pointer before doing trace-only timing work;
  /// like the pool, the context carries but does not own it.
  QueryTrace* trace() const { return trace_; }
  void set_trace(QueryTrace* trace) { trace_ = trace; }

  /// Opt-in EXPLAIN ANALYZE join instrumentation (exec/join_profile.h), or
  /// null. Carried, not owned, like the trace.
  JoinProfile* join_profile() const { return join_profile_; }
  void set_join_profile(JoinProfile* profile) { join_profile_ = profile; }

  /// Arms the deadline `ms` milliseconds from now. `ms` == 0 disarms.
  void SetDeadline(uint64_t ms);

  /// Disarms the deadline and resets the expiry latch so later work can
  /// proceed (the report still records that a deadline was exceeded).
  void ClearDeadline();

  /// Requests a cooperative stop of all workers.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  /// True once the armed deadline has passed. Latches: after the first
  /// positive observation no further clock reads happen.
  bool DeadlineExceeded();

  /// Cooperative stop check: cancelled or past the deadline.
  bool ShouldStop() { return cancelled() || DeadlineExceeded(); }

  // Progress counters (relaxed; workers add in bulk per shard).
  void AddTasksRun(uint64_t n) {
    tasks_run_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddSamples(uint64_t n) {
    samples_drawn_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddMcBatches(uint64_t n) {
    mc_batches_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddCacheHits(uint64_t n) {
    cache_hits_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddDpllDecisions(uint64_t n) {
    dpll_decisions_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddDpllComponentSplits(uint64_t n) {
    dpll_component_splits_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddDpllParallelSplits(uint64_t n) {
    dpll_parallel_splits_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddWmcSharedHits(uint64_t n) {
    wmc_shared_hits_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddWmcSharedMisses(uint64_t n) {
    wmc_shared_misses_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddLineageMatches(uint64_t n) {
    lineage_matches_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddLineageNodes(uint64_t n) {
    lineage_nodes_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddIndexBuilds(uint64_t n) {
    index_builds_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddIndexCacheHits(uint64_t n) {
    index_cache_hits_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddShedTasks(uint64_t n) {
    shed_tasks_.fetch_add(n, std::memory_order_relaxed);
  }

  ExecReport Report();

 private:
  ThreadPool* pool_ = nullptr;
  WmcCache* wmc_cache_ = nullptr;
  IndexCache* index_cache_ = nullptr;
  QueryTrace* trace_ = nullptr;
  JoinProfile* join_profile_ = nullptr;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> deadline_hit_{false};       // current armed deadline
  std::atomic<bool> deadline_ever_hit_{false};  // sticky, for the report
  std::atomic<int64_t> deadline_ns_{0};  // Clock epoch ns; 0 = disarmed
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> samples_drawn_{0};
  std::atomic<uint64_t> mc_batches_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> dpll_decisions_{0};
  std::atomic<uint64_t> dpll_component_splits_{0};
  std::atomic<uint64_t> dpll_parallel_splits_{0};
  std::atomic<uint64_t> wmc_shared_hits_{0};
  std::atomic<uint64_t> wmc_shared_misses_{0};
  std::atomic<uint64_t> lineage_matches_{0};
  std::atomic<uint64_t> lineage_nodes_{0};
  std::atomic<uint64_t> index_builds_{0};
  std::atomic<uint64_t> index_cache_hits_{0};
  std::atomic<uint64_t> shed_tasks_{0};
};

}  // namespace pdb

#endif  // PDB_EXEC_CONTEXT_H_
