#include "incomplete/incomplete.h"

#include <set>

#include "boolean/lineage.h"
#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

CoddTerm CoddTerm::Const(Value value) {
  CoddTerm t;
  t.is_null_ = false;
  t.value_ = std::move(value);
  return t;
}

CoddTerm CoddTerm::Null(std::string label) {
  CoddTerm t;
  t.is_null_ = true;
  t.label_ = std::move(label);
  return t;
}

const Value& CoddTerm::value() const {
  PDB_CHECK(!is_null_);
  return value_;
}

const std::string& CoddTerm::label() const {
  PDB_CHECK(is_null_);
  return label_;
}

std::string CoddTerm::ToString() const {
  return is_null_ ? "?" + label_ : value_.ToString();
}

Status CoddRelation::AddRow(std::vector<CoddTerm> row) {
  if (row.size() != schema_.arity()) {
    return Status::InvalidArgument(
        StrFormat("row arity %zu does not match schema arity %zu", row.size(),
                  schema_.arity()));
  }
  for (size_t j = 0; j < row.size(); ++j) {
    if (!row[j].is_null() &&
        row[j].value().type() != schema_.attribute(j).type) {
      return Status::InvalidArgument(
          StrFormat("constant in column %zu has the wrong type", j));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status IncompleteDatabase::AddRelation(CoddRelation relation) {
  std::string name = relation.name();
  if (relations_.count(name) > 0) {
    return Status::InvalidArgument(
        StrFormat("Codd relation '%s' already exists", name.c_str()));
  }
  relations_.emplace(std::move(name), std::move(relation));
  return Status::OK();
}

Result<const CoddRelation*> IncompleteDatabase::Get(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(
        StrFormat("no Codd relation named '%s'", name.c_str()));
  }
  return &it->second;
}

std::vector<std::string> IncompleteDatabase::RelationNames() const {
  std::vector<std::string> names;
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

std::vector<std::string> IncompleteDatabase::NullLabels() const {
  std::set<std::string> labels;
  for (const auto& [name, rel] : relations_) {
    for (size_t i = 0; i < rel.size(); ++i) {
      for (const CoddTerm& t : rel.row(i)) {
        if (t.is_null()) labels.insert(t.label());
      }
    }
  }
  return std::vector<std::string>(labels.begin(), labels.end());
}

Result<Database> IncompleteDatabase::Instantiate(
    const std::map<std::string, Value>& valuation) const {
  Database world;
  for (const auto& [name, rel] : relations_) {
    Relation instance(rel.name(), rel.schema());
    for (size_t i = 0; i < rel.size(); ++i) {
      Tuple tuple;
      tuple.reserve(rel.schema().arity());
      for (size_t j = 0; j < rel.schema().arity(); ++j) {
        const CoddTerm& t = rel.row(i)[j];
        if (t.is_null()) {
          auto it = valuation.find(t.label());
          if (it == valuation.end()) {
            return Status::InvalidArgument(
                StrFormat("no value for null '%s'", t.label().c_str()));
          }
          if (it->second.type() != rel.schema().attribute(j).type) {
            return Status::InvalidArgument(
                StrFormat("null '%s' assigned a value of the wrong type",
                          t.label().c_str()));
          }
          tuple.push_back(it->second);
        } else {
          tuple.push_back(t.value());
        }
      }
      if (!instance.Contains(tuple)) {
        PDB_RETURN_NOT_OK(instance.AddTuple(std::move(tuple), 1.0));
      }
    }
    PDB_RETURN_NOT_OK(world.AddRelation(std::move(instance)));
  }
  return world;
}

namespace {

// Fresh, pairwise-distinct value of the requested type for null index k.
Value FreshValue(ValueType type, size_t k) {
  switch (type) {
    case ValueType::kInt:
      return Value(static_cast<int64_t>(-1000000007 - static_cast<int64_t>(k)));
    case ValueType::kDouble:
      return Value(-1e18 - static_cast<double>(k));
    case ValueType::kString:
      return Value(StrFormat("__fresh_null_%zu", k));
  }
  return Value(0);
}

}  // namespace

Result<bool> IncompleteDatabase::IsCertain(const Ucq& ucq) const {
  // Determine each null's column type (must be used consistently).
  std::map<std::string, ValueType> type_of;
  for (const auto& [name, rel] : relations_) {
    for (size_t i = 0; i < rel.size(); ++i) {
      for (size_t j = 0; j < rel.schema().arity(); ++j) {
        const CoddTerm& t = rel.row(i)[j];
        if (!t.is_null()) continue;
        ValueType type = rel.schema().attribute(j).type;
        auto [it, inserted] = type_of.emplace(t.label(), type);
        if (!inserted && it->second != type) {
          return Status::Unsupported(
              StrFormat("null '%s' is used in columns of different types",
                        t.label().c_str()));
        }
      }
    }
  }
  std::map<std::string, Value> naive;
  size_t k = 0;
  for (const auto& [label, type] : type_of) {
    naive.emplace(label, FreshValue(type, k++));
  }
  PDB_ASSIGN_OR_RETURN(Database world, Instantiate(naive));
  // Any match of any disjunct makes the (monotone) query true.
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    bool found = false;
    PDB_RETURN_NOT_OK(EnumerateCqMatches(
        cq, world, [&](const CqMatch&) { found = true; }));
    if (found) return true;
  }
  return false;
}

namespace {

Result<bool> ForAllValuations(
    const IncompleteDatabase& db, const Ucq& ucq,
    const std::vector<Value>& domain, size_t max_worlds, bool stop_on,
    bool* result) {
  std::vector<std::string> labels = db.NullLabels();
  size_t total = 1;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (domain.empty()) {
      return Status::InvalidArgument("empty valuation domain with nulls");
    }
    if (total > max_worlds / domain.size()) {
      return Status::ResourceExhausted("too many null valuations");
    }
    total *= domain.size();
  }
  for (size_t combo = 0; combo < total; ++combo) {
    std::map<std::string, Value> valuation;
    size_t rest = combo;
    for (const std::string& label : labels) {
      valuation.emplace(label, domain[rest % domain.size()]);
      rest /= domain.size();
    }
    auto world = db.Instantiate(valuation);
    if (!world.ok()) continue;  // type-incompatible valuation: skip
    bool holds = false;
    for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
      Status st = EnumerateCqMatches(cq, *world,
                                     [&](const CqMatch&) { holds = true; });
      PDB_RETURN_NOT_OK(st);
      if (holds) break;
    }
    if (holds == stop_on) {
      *result = stop_on;
      return true;  // short-circuit
    }
  }
  *result = !stop_on;
  return true;
}

}  // namespace

Result<bool> IncompleteDatabase::IsCertainByEnumeration(
    const Ucq& ucq, const std::vector<Value>& domain,
    size_t max_worlds) const {
  bool result = false;
  // Certain iff no valuation falsifies the query: the scan stops early on
  // the first world where the query fails (result = false); if every world
  // satisfies it, result = true.
  PDB_ASSIGN_OR_RETURN(bool ok, ForAllValuations(*this, ucq, domain,
                                                 max_worlds,
                                                 /*stop_on=*/false, &result));
  (void)ok;
  return result;
}

Result<bool> IncompleteDatabase::IsPossible(const Ucq& ucq,
                                            const std::vector<Value>& domain,
                                            size_t max_worlds) const {
  bool result = false;
  PDB_ASSIGN_OR_RETURN(bool ok, ForAllValuations(*this, ucq, domain,
                                                 max_worlds,
                                                 /*stop_on=*/true, &result));
  (void)ok;
  return result;
}

}  // namespace pdb
