/// \file incomplete.h
/// \brief Incomplete databases and certain answers (paper §9).
///
/// An incomplete database is a set of possible worlds *without*
/// probabilities — "a probabilistic database without the probabilities".
/// This module implements the classic Codd-table representation: relations
/// whose tuples may contain labelled nulls; every assignment of domain
/// constants to nulls yields one possible world.
///
/// A Boolean query is *certain* iff it holds in every possible world. For
/// monotone queries (UCQs) certainty is decided by naive evaluation
/// (Imielinski–Lipski): treat each null as a fresh distinct constant and
/// evaluate normally. `IsCertain` implements that; `IsCertainByEnumeration`
/// is the exponential oracle used to validate it in tests.

#ifndef PDB_INCOMPLETE_INCOMPLETE_H_
#define PDB_INCOMPLETE_INCOMPLETE_H_

#include <map>
#include <string>
#include <vector>

#include "logic/cq.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdb {

/// A cell of a Codd table: a constant or a labelled null.
class CoddTerm {
 public:
  static CoddTerm Const(Value value);
  /// Labelled null; equal labels denote the same unknown value.
  static CoddTerm Null(std::string label);

  bool is_null() const { return is_null_; }
  const Value& value() const;
  const std::string& label() const;

  std::string ToString() const;

 private:
  bool is_null_ = false;
  Value value_;
  std::string label_;
};

/// A relation whose tuples may contain labelled nulls.
class CoddRelation {
 public:
  CoddRelation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  const std::vector<CoddTerm>& row(size_t i) const { return rows_[i]; }

  /// Adds a row; constants must match the schema types.
  Status AddRow(std::vector<CoddTerm> row);

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::vector<CoddTerm>> rows_;
};

/// An incomplete database: Codd tables over a shared null namespace.
class IncompleteDatabase {
 public:
  Status AddRelation(CoddRelation relation);
  Result<const CoddRelation*> Get(const std::string& name) const;
  std::vector<std::string> RelationNames() const;

  /// Sorted labels of all nulls appearing anywhere.
  std::vector<std::string> NullLabels() const;

  /// The possible world obtained by substituting `valuation[label]` for
  /// each null (labels missing from the map are an error). Duplicate rows
  /// collapse (set semantics).
  Result<Database> Instantiate(
      const std::map<std::string, Value>& valuation) const;

  /// Certain answer for a monotone UCQ by naive evaluation: nulls become
  /// fresh distinct constants, then the query is evaluated normally.
  Result<bool> IsCertain(const Ucq& ucq) const;

  /// Certainty by enumerating all valuations of the nulls over `domain`
  /// (the oracle; exponential, guarded by `max_worlds`). For monotone
  /// queries over a domain containing fresh constants this agrees with
  /// IsCertain.
  Result<bool> IsCertainByEnumeration(const Ucq& ucq,
                                      const std::vector<Value>& domain,
                                      size_t max_worlds = 1000000) const;

  /// True iff some valuation satisfies the query (the "possible" modality).
  Result<bool> IsPossible(const Ucq& ucq, const std::vector<Value>& domain,
                          size_t max_worlds = 1000000) const;

 private:
  std::map<std::string, CoddRelation> relations_;
};

}  // namespace pdb

#endif  // PDB_INCOMPLETE_INCOMPLETE_H_
