#include "bid/bid.h"

#include <algorithm>
#include <cmath>

#include "boolean/lineage.h"
#include "util/check.h"
#include "util/string_util.h"
#include "wmc/dpll.h"

namespace pdb {

namespace {
// Tolerance for "block probabilities sum to at most 1".
constexpr double kBlockEps = 1e-9;
}  // namespace

BidRelation::BidRelation(std::string name, Schema schema, size_t key_arity)
    : name_(std::move(name)), schema_(std::move(schema)),
      key_arity_(key_arity) {
  PDB_CHECK(key_arity_ <= schema_.arity());
}

Status BidRelation::AddTuple(Tuple tuple, double p) {
  PDB_RETURN_NOT_OK(schema_.Validate(tuple));
  if (!(p > 0.0) || p > 1.0) {
    return Status::OutOfRange(
        StrFormat("BID tuple probability %g outside (0, 1]", p));
  }
  for (const Tuple& existing : tuples_) {
    if (existing == tuple) {
      return Status::InvalidArgument(
          StrFormat("duplicate tuple %s in BID relation '%s'",
                    TupleToString(tuple).c_str(), name_.c_str()));
    }
  }
  Tuple key(tuple.begin(), tuple.begin() + static_cast<ptrdiff_t>(key_arity_));
  double block_total = p;
  auto it = blocks_.find(key);
  if (it != blocks_.end()) {
    for (size_t row : it->second) block_total += probs_[row];
  }
  if (block_total > 1.0 + kBlockEps) {
    return Status::InvalidArgument(
        StrFormat("block %s of '%s' would have total probability %g > 1",
                  TupleToString(key).c_str(), name_.c_str(), block_total));
  }
  blocks_[key].push_back(tuples_.size());
  tuples_.push_back(std::move(tuple));
  probs_.push_back(p);
  return Status::OK();
}

Relation BidRelation::MarginalRelation() const {
  Relation out(name_, schema_);
  for (size_t i = 0; i < tuples_.size(); ++i) {
    PDB_CHECK(out.AddTuple(tuples_[i], probs_[i]).ok());
  }
  return out;
}

Status BidDatabase::AddRelation(BidRelation relation) {
  std::string name = relation.name();
  if (relations_.count(name) > 0) {
    return Status::InvalidArgument(
        StrFormat("BID relation '%s' already exists", name.c_str()));
  }
  relations_.emplace(std::move(name), std::move(relation));
  return Status::OK();
}

Result<const BidRelation*> BidDatabase::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(
        StrFormat("no BID relation named '%s'", name.c_str()));
  }
  return &it->second;
}

std::vector<std::string> BidDatabase::RelationNames() const {
  std::vector<std::string> names;
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

Database BidDatabase::MarginalDatabase() const {
  Database db;
  for (const auto& [name, rel] : relations_) {
    PDB_CHECK(db.AddRelation(rel.MarginalRelation()).ok());
  }
  return db;
}

Database BidDatabase::SampleWorld(Rng* rng) const {
  Database world;
  for (const auto& [name, rel] : relations_) {
    Relation sampled(rel.name(), rel.schema());
    for (const auto& [key, rows] : rel.blocks()) {
      double u = rng->NextDouble();
      double acc = 0.0;
      for (size_t row : rows) {
        acc += rel.prob(row);
        if (u < acc) {
          PDB_CHECK(sampled.AddTuple(rel.tuple(row), 1.0).ok());
          break;
        }
      }
      // u >= acc after the loop: the block is empty in this world.
    }
    PDB_CHECK(world.AddRelation(std::move(sampled)).ok());
  }
  return world;
}

Result<BidEncoding> BuildBidEncoding(const BidDatabase& db,
                                     FormulaManager* mgr) {
  BidEncoding encoding;
  for (const std::string& name : db.RelationNames()) {
    PDB_ASSIGN_OR_RETURN(const BidRelation* rel, db.Get(name));
    std::vector<NodeId>& indicators = encoding.indicators[name];
    indicators.assign(rel->size(), mgr->False());
    for (const auto& [key, rows] : rel->blocks()) {
      // Sequential decomposition: tuple i present iff the first i-1 chain
      // variables are false and X_i is true, with
      //   q_i = p_i / (1 - sum_{j<i} p_j),
      // which makes P(tuple i) = p_i exactly and the events disjoint.
      double residual = 1.0;
      NodeId prefix_all_false = mgr->True();
      for (size_t row : rows) {
        double p = rel->prob(row);
        double q = residual <= 0.0 ? 1.0 : p / residual;
        q = std::min(q, 1.0);
        VarId var = static_cast<VarId>(encoding.probs.size());
        encoding.probs.push_back(q);
        NodeId x = mgr->Var(var);
        indicators[row] = mgr->And(prefix_all_false, x);
        prefix_all_false = mgr->And(prefix_all_false, mgr->Not(x));
        residual -= p;
      }
    }
  }
  return encoding;
}

Result<double> BidDatabase::QueryProbability(const Ucq& ucq) const {
  FormulaManager mgr;
  PDB_ASSIGN_OR_RETURN(BidEncoding encoding, BuildBidEncoding(*this, &mgr));
  Database marginal = MarginalDatabase();
  std::vector<NodeId> disjuncts;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    std::vector<NodeId> terms;
    Status st = EnumerateCqMatches(cq, marginal, [&](const CqMatch& match) {
      std::vector<NodeId> lits;
      lits.reserve(match.atom_rows.size());
      for (const LineageVar& lv : match.atom_rows) {
        lits.push_back(encoding.indicators[lv.relation][lv.row]);
      }
      terms.push_back(mgr.And(std::move(lits)));
    });
    PDB_RETURN_NOT_OK(st);
    disjuncts.push_back(mgr.Or(std::move(terms)));
  }
  NodeId root = mgr.Or(std::move(disjuncts));
  DpllCounter counter(&mgr, WeightsFromProbabilities(encoding.probs));
  return counter.Compute(root);
}

Result<double> BidDatabase::QueryProbabilityBruteForce(
    const Ucq& ucq, size_t max_choices) const {
  // Enumerate, per block, which tuple (or none) is present.
  struct Block {
    const BidRelation* rel;
    const std::vector<size_t>* rows;
  };
  std::vector<Block> blocks;
  for (const auto& [name, rel] : relations_) {
    for (const auto& [key, rows] : rel.blocks()) {
      blocks.push_back({&rel, &rows});
    }
  }
  size_t total = 1;
  for (const Block& block : blocks) {
    size_t options = block.rows->size() + 1;  // + empty block
    if (total > max_choices / options) {
      return Status::ResourceExhausted(
          "BID brute force has too many block combinations");
    }
    total *= options;
  }
  FoPtr sentence = ucq.ToFo();
  double probability = 0.0;
  for (size_t combo = 0; combo < total; ++combo) {
    size_t rest = combo;
    double weight = 1.0;
    Database world;
    for (const auto& [name, rel] : relations_) {
      PDB_CHECK(world.AddRelation(Relation(rel.name(), rel.schema())).ok());
    }
    for (size_t b = 0; b < blocks.size(); ++b) {
      size_t options = blocks[b].rows->size() + 1;
      size_t pick = rest % options;
      rest /= options;
      double block_mass = 0.0;
      for (size_t row : *blocks[b].rows) {
        block_mass += blocks[b].rel->prob(row);
      }
      if (pick == blocks[b].rows->size()) {
        weight *= std::max(0.0, 1.0 - block_mass);  // empty block
      } else {
        size_t row = (*blocks[b].rows)[pick];
        weight *= blocks[b].rel->prob(row);
        Relation* rel = *world.GetMutable(blocks[b].rel->name());
        PDB_CHECK(rel->AddTuple(blocks[b].rel->tuple(row), 1.0).ok());
      }
    }
    if (weight == 0.0) continue;
    if (EvaluateOnWorld(sentence, world, world.ActiveDomain())) {
      probability += weight;
    }
  }
  return probability;
}

}  // namespace pdb
