/// \file bid.h
/// \brief Block-independent-disjoint (BID) tables (paper §1, [16]).
///
/// A BID relation partitions its tuples into blocks by a key prefix: tuples
/// within one block are mutually exclusive (at most one is present; the
/// block may also be empty), and distinct blocks are independent. BID
/// tables are the standard model for attribute-level uncertainty ("this
/// sensor reading is 40 with p=0.6 or 41 with p=0.3").
///
/// Query evaluation reuses the whole grounded stack: each block becomes a
/// chain of fresh independent Boolean variables whose sequential
/// decomposition reproduces the block distribution exactly, each tuple's
/// indicator becomes a small formula over the chain, and the UCQ lineage is
/// assembled from those indicators (then counted with the DPLL engine).

#ifndef PDB_BID_BID_H_
#define PDB_BID_BID_H_

#include <map>
#include <string>
#include <vector>

#include "boolean/formula.h"
#include "logic/cq.h"
#include "storage/database.h"
#include "util/random.h"
#include "util/status.h"

namespace pdb {

/// One BID relation: the first `key_arity` columns are the block key.
class BidRelation {
 public:
  BidRelation(std::string name, Schema schema, size_t key_arity);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t arity() const { return schema_.arity(); }
  size_t key_arity() const { return key_arity_; }
  size_t size() const { return tuples_.size(); }

  /// Adds a tuple with probability p > 0; fails if the block's total
  /// probability would exceed 1 (+eps) or on duplicates.
  Status AddTuple(Tuple tuple, double p);

  const Tuple& tuple(size_t i) const { return tuples_[i]; }
  double prob(size_t i) const { return probs_[i]; }

  /// Row indices grouped by block key, in insertion order per block.
  const std::map<Tuple, std::vector<size_t>>& blocks() const {
    return blocks_;
  }

  /// The marginal view: a plain relation with each tuple at its marginal
  /// probability (correlations dropped) — used for match enumeration and
  /// as a (wrong-on-purpose) independence baseline in tests.
  Relation MarginalRelation() const;

 private:
  std::string name_;
  Schema schema_;
  size_t key_arity_;
  std::vector<Tuple> tuples_;
  std::vector<double> probs_;
  std::map<Tuple, std::vector<size_t>> blocks_;
};

/// A database of BID relations.
class BidDatabase {
 public:
  Status AddRelation(BidRelation relation);
  Result<const BidRelation*> Get(const std::string& name) const;
  std::vector<std::string> RelationNames() const;

  /// Marginal TID view of every relation (for match enumeration).
  Database MarginalDatabase() const;

  /// Samples a possible world: per block, at most one tuple (chosen with
  /// its probability; none with the residual probability).
  Database SampleWorld(Rng* rng) const;

  /// Exact probability of a monotone UCQ via the chain encoding + DPLL.
  Result<double> QueryProbability(const Ucq& ucq) const;

  /// Exact probability by enumerating per-block choices (the oracle;
  /// exponential in the number of blocks, guarded).
  Result<double> QueryProbabilityBruteForce(const Ucq& ucq,
                                            size_t max_choices = 2000000)
      const;

 private:
  std::map<std::string, BidRelation> relations_;
};

/// The chain encoding of one BID database: every tuple's presence as a
/// Boolean formula over fresh independent variables.
struct BidEncoding {
  /// indicator[relation][row] = formula that is true iff the tuple is in
  /// the world.
  std::map<std::string, std::vector<NodeId>> indicators;
  /// Probability of each chain variable.
  std::vector<double> probs;
};

/// Builds the chain encoding into `mgr`. Exposed for tests.
Result<BidEncoding> BuildBidEncoding(const BidDatabase& db,
                                     FormulaManager* mgr);

}  // namespace pdb

#endif  // PDB_BID_BID_H_
