#include "wmc/enumeration.h"

#include <algorithm>

#include "util/string_util.h"

namespace pdb {

namespace {

Status CheckVarCount(size_t n, size_t limit) {
  if (n > limit) {
    return Status::ResourceExhausted(
        StrFormat("enumeration over %zu variables exceeds the limit of %zu",
                  n, limit));
  }
  return Status::OK();
}

size_t AssignmentSize(const std::vector<VarId>& vars) {
  size_t max_var = 0;
  for (VarId v : vars) max_var = std::max<size_t>(max_var, v);
  return vars.empty() ? 0 : max_var + 1;
}

}  // namespace

Result<double> EnumerateProbability(FormulaManager* mgr, NodeId root,
                                    const std::vector<double>& probs) {
  const std::vector<VarId>& vars = mgr->VarsOf(root);
  PDB_RETURN_NOT_OK(CheckVarCount(vars.size(), kMaxEnumerationVars));
  double total = 0.0;
  std::vector<bool> assignment(AssignmentSize(vars), false);
  const uint64_t combos = 1ULL << vars.size();
  for (uint64_t mask = 0; mask < combos; ++mask) {
    double weight = 1.0;
    for (size_t i = 0; i < vars.size(); ++i) {
      bool value = (mask >> i) & 1;
      assignment[vars[i]] = value;
      weight *= value ? probs[vars[i]] : 1.0 - probs[vars[i]];
    }
    if (weight != 0.0 && mgr->Evaluate(root, assignment)) total += weight;
  }
  return total;
}

Result<double> EnumerateWmc(FormulaManager* mgr, NodeId root,
                            const WeightMap& weights) {
  const std::vector<VarId>& vars = mgr->VarsOf(root);
  PDB_RETURN_NOT_OK(CheckVarCount(vars.size(), kMaxEnumerationVars));
  double total = 0.0;
  std::vector<bool> assignment(AssignmentSize(vars), false);
  const uint64_t combos = 1ULL << vars.size();
  for (uint64_t mask = 0; mask < combos; ++mask) {
    double weight = 1.0;
    for (size_t i = 0; i < vars.size(); ++i) {
      bool value = (mask >> i) & 1;
      assignment[vars[i]] = value;
      weight *= value ? weights[vars[i]].w_true : weights[vars[i]].w_false;
    }
    if (mgr->Evaluate(root, assignment)) total += weight;
  }
  return total;
}

Result<BigRational> EnumerateProbabilityExact(
    FormulaManager* mgr, NodeId root, const std::vector<double>& probs) {
  return EnumerateWmcExact(mgr, root,
                           RationalWeightsFromProbabilities(probs));
}

Result<BigRational> EnumerateWmcExact(FormulaManager* mgr, NodeId root,
                                      const RationalWeightMap& weights) {
  const std::vector<VarId>& vars = mgr->VarsOf(root);
  PDB_RETURN_NOT_OK(CheckVarCount(vars.size(), kMaxExactEnumerationVars));
  BigRational total;
  std::vector<bool> assignment(AssignmentSize(vars), false);
  const uint64_t combos = 1ULL << vars.size();
  for (uint64_t mask = 0; mask < combos; ++mask) {
    for (size_t i = 0; i < vars.size(); ++i) {
      assignment[vars[i]] = (mask >> i) & 1;
    }
    if (!mgr->Evaluate(root, assignment)) continue;
    BigRational weight(1);
    for (size_t i = 0; i < vars.size(); ++i) {
      weight *= assignment[vars[i]] ? weights[vars[i]].w_true
                                    : weights[vars[i]].w_false;
    }
    total += weight;
  }
  return total;
}

Result<BigInt> CountModels(FormulaManager* mgr, NodeId root) {
  const std::vector<VarId>& vars = mgr->VarsOf(root);
  PDB_RETURN_NOT_OK(CheckVarCount(vars.size(), kMaxEnumerationVars));
  BigInt count;
  std::vector<bool> assignment(AssignmentSize(vars), false);
  const uint64_t combos = 1ULL << vars.size();
  for (uint64_t mask = 0; mask < combos; ++mask) {
    for (size_t i = 0; i < vars.size(); ++i) {
      assignment[vars[i]] = (mask >> i) & 1;
    }
    if (mgr->Evaluate(root, assignment)) count += BigInt(1);
  }
  return count;
}

}  // namespace pdb
