/// \file montecarlo.h
/// \brief Approximate inference: naive Monte Carlo over possible worlds and
/// the Karp–Luby FPRAS for DNF lineages.
///
/// These are the practical fallback when PQE(Q) is #P-hard (paper §2, §10):
/// both return unbiased estimates with O(1/sqrt(samples)) error; Karp-Luby's
/// relative error is independent of how small the probability is.

#ifndef PDB_WMC_MONTECARLO_H_
#define PDB_WMC_MONTECARLO_H_

#include <cstdint>
#include <vector>

#include "boolean/formula.h"
#include "util/random.h"
#include "util/status.h"

namespace pdb {

/// An estimate with its standard error.
struct Estimate {
  double value = 0.0;
  double stderr_ = 0.0;
  uint64_t samples = 0;
};

/// Naive sampling: draw `samples` assignments (variable v true with
/// probability probs[v]) and report the fraction satisfying `root`.
Estimate NaiveMonteCarlo(FormulaManager* mgr, NodeId root,
                         const std::vector<double>& probs, uint64_t samples,
                         Rng* rng);

/// Karp–Luby estimator for a DNF given as term lists (each term a
/// conjunction of positive variables). Requires at least one term with
/// nonzero probability; probabilities must lie in [0, 1].
Result<Estimate> KarpLubyDnf(const std::vector<std::vector<VarId>>& terms,
                             const std::vector<double>& probs,
                             uint64_t samples, Rng* rng);

}  // namespace pdb

#endif  // PDB_WMC_MONTECARLO_H_
