/// \file montecarlo.h
/// \brief Approximate inference: naive Monte Carlo over possible worlds and
/// the Karp–Luby FPRAS for DNF lineages.
///
/// These are the practical fallback when PQE(Q) is #P-hard (paper §2, §10):
/// both return unbiased estimates with O(1/sqrt(samples)) error; Karp-Luby's
/// relative error is independent of how small the probability is.
///
/// Both estimators shard their sample budget into deterministic RNG
/// substreams (`Rng::Split`). The shard plan depends only on the requested
/// sample count — never on the thread count — and shard results are merged
/// in shard order on the calling thread, so for a fixed seed the estimate is
/// bit-identical whether it ran on 1 worker or 64. Pass an `ExecContext`
/// with a pool to run shards in parallel; the context's deadline/cancel
/// signal stops sampling early (the estimate then reports the number of
/// samples actually drawn).

#ifndef PDB_WMC_MONTECARLO_H_
#define PDB_WMC_MONTECARLO_H_

#include <cstdint>
#include <vector>

#include "boolean/formula.h"
#include "exec/context.h"
#include "util/random.h"
#include "util/status.h"

namespace pdb {

/// An estimate with its standard error.
struct Estimate {
  double value = 0.0;
  double std_error = 0.0;
  /// Samples actually drawn (less than requested when stopped early).
  uint64_t samples = 0;
};

/// Number of RNG substreams a budget of `samples` is split into. A pure
/// function of the sample count, so the shard plan — and therefore the
/// merged estimate — is independent of how many threads execute it.
uint64_t NumSampleShards(uint64_t samples);

/// Naive sampling: draw `samples` assignments (variable v true with
/// probability probs[v]) and report the fraction satisfying `root`.
/// `ctx` may be null (sequential, no deadline).
Estimate NaiveMonteCarlo(FormulaManager* mgr, NodeId root,
                         const std::vector<double>& probs, uint64_t samples,
                         Rng* rng, ExecContext* ctx = nullptr);

/// Karp–Luby estimator for a DNF given as term lists (each term a
/// conjunction of positive variables). Requires at least one term with
/// nonzero probability; probabilities must lie in [0, 1].
/// `ctx` may be null (sequential, no deadline).
Result<Estimate> KarpLubyDnf(const std::vector<std::vector<VarId>>& terms,
                             const std::vector<double>& probs,
                             uint64_t samples, Rng* rng,
                             ExecContext* ctx = nullptr);

/// Tuning for the adaptive (anytime) Karp–Luby estimator.
struct AdaptiveSampleOptions {
  /// Hard cap on samples (the budget of a full, non-early-stopped run).
  uint64_t max_samples = 200000;
  /// Stop as soon as the running standard error falls to this target;
  /// 0 disables early stopping (the full budget is always drawn).
  double target_std_error = 0.0;
  /// Samples per batch; stopping conditions are evaluated between batches.
  /// 0 picks a default that keeps the shard plan parallel-friendly.
  uint64_t batch_samples = 0;
  /// Batches drawn before the std-error test may fire (guards against a
  /// fluky near-zero variance estimate on a handful of samples).
  uint64_t min_batches = 2;
};

/// Anytime Karp–Luby: draws `batch_samples`-sized batches and stops early
/// once `target_std_error` is reached or the context's deadline/cancel
/// signal fires, instead of always spending the full budget (Gatterbauer–
/// Suciu-style anytime inference). Each batch is itself sharded with the
/// thread-count-invariant plan of `KarpLubyDnf` and batches are merged in
/// batch order, so for a fixed seed the estimate of a *full* run (no early
/// stop) is bit-identical whether it ran on 1 worker or 64; an
/// early-stopped run is deterministic too, provided the stop came from the
/// std-error test rather than the wall clock.
Result<Estimate> KarpLubyDnfAdaptive(
    const std::vector<std::vector<VarId>>& terms,
    const std::vector<double>& probs, const AdaptiveSampleOptions& options,
    Rng* rng, ExecContext* ctx = nullptr);

}  // namespace pdb

#endif  // PDB_WMC_MONTECARLO_H_
