/// \file montecarlo.h
/// \brief Approximate inference: naive Monte Carlo over possible worlds and
/// the Karp–Luby FPRAS for DNF lineages.
///
/// These are the practical fallback when PQE(Q) is #P-hard (paper §2, §10):
/// both return unbiased estimates with O(1/sqrt(samples)) error; Karp-Luby's
/// relative error is independent of how small the probability is.
///
/// Both estimators shard their sample budget into deterministic RNG
/// substreams (`Rng::Split`). The shard plan depends only on the requested
/// sample count — never on the thread count — and shard results are merged
/// in shard order on the calling thread, so for a fixed seed the estimate is
/// bit-identical whether it ran on 1 worker or 64. Pass an `ExecContext`
/// with a pool to run shards in parallel; the context's deadline/cancel
/// signal stops sampling early (the estimate then reports the number of
/// samples actually drawn).

#ifndef PDB_WMC_MONTECARLO_H_
#define PDB_WMC_MONTECARLO_H_

#include <cstdint>
#include <vector>

#include "boolean/formula.h"
#include "exec/context.h"
#include "util/random.h"
#include "util/status.h"

namespace pdb {

/// An estimate with its standard error.
struct Estimate {
  double value = 0.0;
  double std_error = 0.0;
  /// Samples actually drawn (less than requested when stopped early).
  uint64_t samples = 0;
};

/// Number of RNG substreams a budget of `samples` is split into. A pure
/// function of the sample count, so the shard plan — and therefore the
/// merged estimate — is independent of how many threads execute it.
uint64_t NumSampleShards(uint64_t samples);

/// Naive sampling: draw `samples` assignments (variable v true with
/// probability probs[v]) and report the fraction satisfying `root`.
/// `ctx` may be null (sequential, no deadline).
Estimate NaiveMonteCarlo(FormulaManager* mgr, NodeId root,
                         const std::vector<double>& probs, uint64_t samples,
                         Rng* rng, ExecContext* ctx = nullptr);

/// Karp–Luby estimator for a DNF given as term lists (each term a
/// conjunction of positive variables). Requires at least one term with
/// nonzero probability; probabilities must lie in [0, 1].
/// `ctx` may be null (sequential, no deadline).
Result<Estimate> KarpLubyDnf(const std::vector<std::vector<VarId>>& terms,
                             const std::vector<double>& probs,
                             uint64_t samples, Rng* rng,
                             ExecContext* ctx = nullptr);

}  // namespace pdb

#endif  // PDB_WMC_MONTECARLO_H_
