#include "wmc/weights.h"

namespace pdb {

WeightMap WeightsFromProbabilities(const std::vector<double>& probs) {
  WeightMap out;
  out.reserve(probs.size());
  for (double p : probs) out.push_back(WeightPair::Probability(p));
  return out;
}

RationalWeightMap RationalWeightsFromProbabilities(
    const std::vector<double>& probs) {
  RationalWeightMap out;
  out.reserve(probs.size());
  for (double p : probs) {
    out.push_back(RationalWeightPair::Probability(BigRational::FromDouble(p)));
  }
  return out;
}

}  // namespace pdb
