/// \file wmc_cache.h
/// \brief Cross-query WMC memoization: a sharded, thread-safe cache of
/// weighted model counts keyed by canonical subformula signatures.
///
/// The paper's grounded-inference story (§7) rests on DPLL with formula
/// caching, but a `DpllCounter`'s local cache is keyed by manager-local
/// `NodeId`s and dies with the counter. This cache is the session-lifetime
/// complement — the cross-run memoization that Cachet-style component
/// caching (Sang et al.) and sharpSAT's hash-based component store get
/// their orders of magnitude from:
///
///  - keys are `FormulaManager::SignatureOf` canonical 128-bit structural
///    signatures, stable across managers, plus a 64-bit fingerprint of the
///    weights of the subformula's variable set — a WMC value is a pure
///    function of (unordered structure, per-variable weights), so a key
///    match means the cached double is *the* answer, bit for bit;
///  - the table is N-way sharded (mutex striping on the signature), so the
///    parallel component children of one query, the per-tuple fan-out of
///    `QueryWithAnswers`, and concurrent session clients all publish and
///    probe one cache without serialising on a single lock;
///  - each shard runs CLOCK (second-chance) eviction under its slice of a
///    configurable byte budget, so a long-lived session cannot grow the
///    cache without bound while hot entries survive;
///  - hits/misses/inserts/evictions are counted per shard and aggregated
///    on demand (`stats()`), feeding the session's `ExecReport`.
///
/// Like all hash-based component caching, soundness is probabilistic: two
/// distinct (formula, weights) pairs colliding on all 192 key bits would
/// alias. At the ~2^-64 birthday scale of realistic workloads this is far
/// below the hardware's undetected-error rate.

#ifndef PDB_WMC_WMC_CACHE_H_
#define PDB_WMC_WMC_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "boolean/formula.h"
#include "wmc/weights.h"

namespace pdb {

/// 64-bit fingerprint of the weight pairs of `vars` (sorted VarIds, as
/// returned by `FormulaManager::VarsOf`). Encodes both the variable set and
/// each variable's exact (w, w̄) bits, so structurally identical formulas
/// evaluated under different weight maps can never alias in the cache.
uint64_t WeightFingerprint(const std::vector<VarId>& vars,
                           const WeightMap& weights);

/// Aggregated counters of a `WmcCache` (sum over shards).
struct WmcCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  /// Approximate resident bytes (entries × per-entry footprint).
  size_t bytes = 0;
};

/// Options for a `WmcCache`.
struct WmcCacheOptions {
  /// Number of mutex-striped shards (rounded up to at least 1).
  size_t num_shards = 16;
  /// Total byte budget across shards; each shard evicts under its slice.
  size_t max_bytes = size_t{64} << 20;
};

/// Sharded, thread-safe map from (signature, weight fingerprint) to a
/// weighted model count. All methods are safe to call concurrently.
class WmcCache {
 public:
  struct Key {
    FormulaSignature sig;
    uint64_t weight_fp = 0;

    bool operator==(const Key& o) const {
      return sig == o.sig && weight_fp == o.weight_fp;
    }
  };

  explicit WmcCache(WmcCacheOptions options = {});

  /// The cached count for `key`, marking the entry recently used; nullopt
  /// on miss.
  std::optional<double> Lookup(const Key& key);

  /// Publishes `value` under `key`, evicting cold entries if the shard is
  /// over budget. Re-inserting an existing key only refreshes its
  /// recency (values for one key are identical by construction).
  void Insert(const Key& key, double value);

  /// Drops every entry (counters survive). Used by the session on database
  /// mutation — hygiene rather than correctness: stale entries keep their
  /// weight fingerprints, so they could never serve a mismatched lookup.
  void Clear();

  /// Point-in-time copy of every entry, shard by shard. Feeds the durable
  /// layer's component store (`DurableDatabase::SpillWmcCache`) — keys are
  /// pure functions of (formula structure, weights), so exported entries
  /// stay valid across restarts and database mutations alike.
  std::vector<std::pair<Key, double>> Export() const;

  WmcCacheStats stats() const;

  size_t num_shards() const { return shards_.size(); }

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // The signature is already avalanched; fold in the fingerprint.
      return static_cast<size_t>(k.sig.hi ^ (k.sig.lo * 3) ^
                                 (k.weight_fp * 0x9e3779b97f4a7c15ULL));
    }
  };

  /// One CLOCK slot: the entry plus its second-chance reference bit.
  struct Slot {
    Key key;
    double value = 0;
    bool referenced = false;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, size_t, KeyHash> index;  // key -> slot position
    std::vector<Slot> slots;
    size_t clock_hand = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const Key& key) {
    return *shards_[key.sig.lo % shards_.size()];
  }

  size_t slots_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pdb

#endif  // PDB_WMC_WMC_CACHE_H_
