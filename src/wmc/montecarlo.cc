#include "wmc/montecarlo.h"

#include <algorithm>
#include <cmath>

#include "exec/parallel.h"
#include "util/check.h"

namespace pdb {

namespace {

/// How often shard loops poll ExecContext::ShouldStop().
constexpr uint64_t kStopCheckStride = 512;

/// Samples assigned to shard `i` of `shards` for a total budget of
/// `samples`: the remainder spreads over the first shards.
uint64_t ShardBudget(uint64_t samples, uint64_t shards, uint64_t i) {
  return samples / shards + (i < samples % shards ? 1 : 0);
}

}  // namespace

uint64_t NumSampleShards(uint64_t samples) {
  // Shards of >= 1024 samples keep the per-shard RNG/setup cost in the
  // noise; 64 shards saturate any realistic pool while staying cheap to
  // merge. Small budgets stay in one shard.
  return std::clamp<uint64_t>(samples / 1024, 1, 64);
}

Estimate NaiveMonteCarlo(FormulaManager* mgr, NodeId root,
                         const std::vector<double>& probs, uint64_t samples,
                         Rng* rng, ExecContext* ctx) {
  // Warm the VarsOf cache before the fan-out: VarsOf mutates the manager,
  // Evaluate is a const traversal that workers may run concurrently.
  const std::vector<VarId> vars = mgr->VarsOf(root);
  size_t max_var = 0;
  for (VarId v : vars) max_var = std::max<size_t>(max_var, v);

  // The parent generator advances exactly once per call; all shards derive
  // their substreams from the resulting base state.
  Rng base(rng->Next());

  struct Shard {
    uint64_t hits = 0;
    uint64_t drawn = 0;
  };
  uint64_t shards = NumSampleShards(samples);
  std::vector<Shard> parts = ParallelMap<Shard>(ctx, shards, [&](size_t i) {
    Rng shard_rng = base.Split(i);
    std::vector<bool> assignment(vars.empty() ? 0 : max_var + 1, false);
    Shard part;
    uint64_t budget = ShardBudget(samples, shards, i);
    for (uint64_t s = 0; s < budget; ++s) {
      if (ctx && s % kStopCheckStride == 0 && ctx->ShouldStop()) break;
      for (VarId v : vars) assignment[v] = shard_rng.Bernoulli(probs[v]);
      if (mgr->Evaluate(root, assignment)) ++part.hits;
      ++part.drawn;
    }
    return part;
  });

  uint64_t hits = 0;
  uint64_t drawn = 0;
  for (const Shard& part : parts) {
    hits += part.hits;
    drawn += part.drawn;
  }
  if (ctx) {
    ctx->AddSamples(drawn);
    ctx->AddMcBatches(1);
  }

  Estimate est;
  est.samples = drawn;
  est.value = drawn == 0 ? 0.0 : static_cast<double>(hits) / drawn;
  est.std_error =
      drawn == 0 ? 0.0 : std::sqrt(est.value * (1.0 - est.value) / drawn);
  return est;
}

namespace {

/// Precomputed Karp–Luby sampling tables, shared by the one-shot and the
/// adaptive estimator.
struct KlSetup {
  std::vector<double> term_probs;
  double total = 0.0;
  std::vector<double> cumulative;
  std::vector<VarId> all_vars;
  size_t max_var = 0;
};

Result<KlSetup> PrepareKarpLuby(const std::vector<std::vector<VarId>>& terms,
                                const std::vector<double>& probs) {
  KlSetup setup;
  // Per-term probabilities and the union-bound total U.
  setup.term_probs.resize(terms.size());
  for (size_t i = 0; i < terms.size(); ++i) {
    double p = 1.0;
    for (VarId v : terms[i]) {
      if (v >= probs.size()) {
        return Status::InvalidArgument("term variable outside weight map");
      }
      p *= probs[v];
    }
    setup.term_probs[i] = p;
    setup.total += p;
  }
  if (setup.total == 0.0) return setup;
  // Cumulative distribution for term sampling.
  setup.cumulative.resize(terms.size());
  double acc = 0.0;
  for (size_t i = 0; i < terms.size(); ++i) {
    acc += setup.term_probs[i] / setup.total;
    setup.cumulative[i] = acc;
  }
  // All variables mentioned by any term.
  for (const auto& t : terms) {
    setup.all_vars.insert(setup.all_vars.end(), t.begin(), t.end());
  }
  std::sort(setup.all_vars.begin(), setup.all_vars.end());
  setup.all_vars.erase(
      std::unique(setup.all_vars.begin(), setup.all_vars.end()),
      setup.all_vars.end());
  setup.max_var = setup.all_vars.empty() ? 0 : setup.all_vars.back() + 1;
  return setup;
}

/// Running moments of the Karp–Luby estimator.
struct KlAccum {
  double sum = 0.0;
  double sum_sq = 0.0;
  uint64_t drawn = 0;
};

/// Draws one batch of `samples` with the thread-count-invariant shard plan
/// (substreams of `base`, merged in shard order on the calling thread).
KlAccum KarpLubyBatch(const std::vector<std::vector<VarId>>& terms,
                      const std::vector<double>& probs, const KlSetup& setup,
                      uint64_t samples, const Rng& base, ExecContext* ctx) {
  uint64_t shards = NumSampleShards(samples);
  std::vector<KlAccum> parts =
      ParallelMap<KlAccum>(ctx, shards, [&](size_t i) {
        Rng shard_rng = base.Split(i);
        std::vector<bool> assignment(setup.max_var, false);
        KlAccum part;
        uint64_t budget = ShardBudget(samples, shards, i);
        for (uint64_t s = 0; s < budget; ++s) {
          if (ctx && s % kStopCheckStride == 0 && ctx->ShouldStop()) break;
          // Pick a term proportional to its probability.
          double u = shard_rng.NextDouble();
          size_t chosen = std::lower_bound(setup.cumulative.begin(),
                                           setup.cumulative.end(), u) -
                          setup.cumulative.begin();
          if (chosen >= terms.size()) chosen = terms.size() - 1;
          // Sample an assignment conditioned on the chosen term being true.
          for (VarId v : setup.all_vars) {
            assignment[v] = shard_rng.Bernoulli(probs[v]);
          }
          for (VarId v : terms[chosen]) assignment[v] = true;
          // Count how many terms the assignment satisfies (>= 1 by
          // construction).
          size_t satisfied = 0;
          for (const auto& term : terms) {
            bool sat = true;
            for (VarId v : term) {
              if (!assignment[v]) {
                sat = false;
                break;
              }
            }
            if (sat) ++satisfied;
          }
          PDB_CHECK(satisfied >= 1);
          double x = setup.total / static_cast<double>(satisfied);
          part.sum += x;
          part.sum_sq += x * x;
          ++part.drawn;
        }
        return part;
      });
  // Merge in shard order: floating-point sums are order-dependent, and the
  // fixed order is what makes the estimate thread-count invariant.
  KlAccum merged;
  for (const KlAccum& part : parts) {
    merged.sum += part.sum;
    merged.sum_sq += part.sum_sq;
    merged.drawn += part.drawn;
  }
  return merged;
}

Estimate EstimateFromAccum(const KlAccum& accum) {
  Estimate est;
  est.samples = accum.drawn;
  if (accum.drawn > 0) {
    est.value = accum.sum / static_cast<double>(accum.drawn);
    double variance =
        std::max(0.0, accum.sum_sq / static_cast<double>(accum.drawn) -
                          est.value * est.value);
    est.std_error = std::sqrt(variance / static_cast<double>(accum.drawn));
  }
  return est;
}

}  // namespace

Result<Estimate> KarpLubyDnf(const std::vector<std::vector<VarId>>& terms,
                             const std::vector<double>& probs,
                             uint64_t samples, Rng* rng, ExecContext* ctx) {
  if (terms.empty()) {
    return Estimate{0.0, 0.0, samples};
  }
  PDB_ASSIGN_OR_RETURN(KlSetup setup, PrepareKarpLuby(terms, probs));
  if (setup.total == 0.0) {
    return Estimate{0.0, 0.0, samples};
  }
  Rng base(rng->Next());
  KlAccum accum = KarpLubyBatch(terms, probs, setup, samples, base, ctx);
  if (ctx) {
    ctx->AddSamples(accum.drawn);
    ctx->AddMcBatches(1);
  }
  return EstimateFromAccum(accum);
}

Result<Estimate> KarpLubyDnfAdaptive(
    const std::vector<std::vector<VarId>>& terms,
    const std::vector<double>& probs, const AdaptiveSampleOptions& options,
    Rng* rng, ExecContext* ctx) {
  if (terms.empty()) {
    return Estimate{0.0, 0.0, 0};
  }
  PDB_ASSIGN_OR_RETURN(KlSetup setup, PrepareKarpLuby(terms, probs));
  if (setup.total == 0.0) {
    return Estimate{0.0, 0.0, 0};
  }
  uint64_t batch = options.batch_samples;
  if (batch == 0) {
    // Default: ~16 stopping checkpoints over the budget, but at least 4096
    // samples per batch so each batch still shards across workers.
    batch = std::clamp<uint64_t>(options.max_samples / 16, 4096, 65536);
  }
  KlAccum accum;
  uint64_t batches = 0;
  while (accum.drawn < options.max_samples) {
    // "Deadline nears": stop between batches once the cooperative signal
    // fires (a mid-batch expiry additionally stops the shard loops, so at
    // most one partial batch is drawn after the deadline).
    if (ctx && ctx->ShouldStop()) break;
    uint64_t want = std::min(batch, options.max_samples - accum.drawn);
    // One parent advance per batch, exactly like one KarpLubyDnf call per
    // batch: the substream tree (and hence a full run's estimate) is a
    // pure function of the seed and the batch plan, never of thread count.
    Rng base(rng->Next());
    KlAccum part = KarpLubyBatch(terms, probs, setup, want, base, ctx);
    accum.sum += part.sum;
    accum.sum_sq += part.sum_sq;
    accum.drawn += part.drawn;
    ++batches;
    if (options.target_std_error > 0 && batches >= options.min_batches &&
        accum.drawn > 0 &&
        EstimateFromAccum(accum).std_error <= options.target_std_error) {
      break;
    }
  }
  if (ctx) {
    ctx->AddSamples(accum.drawn);
    ctx->AddMcBatches(batches);
  }
  return EstimateFromAccum(accum);
}

}  // namespace pdb
