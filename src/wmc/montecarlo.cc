#include "wmc/montecarlo.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pdb {

Estimate NaiveMonteCarlo(FormulaManager* mgr, NodeId root,
                         const std::vector<double>& probs, uint64_t samples,
                         Rng* rng) {
  const std::vector<VarId>& vars = mgr->VarsOf(root);
  size_t max_var = 0;
  for (VarId v : vars) max_var = std::max<size_t>(max_var, v);
  std::vector<bool> assignment(vars.empty() ? 0 : max_var + 1, false);
  uint64_t hits = 0;
  for (uint64_t s = 0; s < samples; ++s) {
    for (VarId v : vars) assignment[v] = rng->Bernoulli(probs[v]);
    if (mgr->Evaluate(root, assignment)) ++hits;
  }
  Estimate est;
  est.samples = samples;
  est.value = samples == 0 ? 0.0 : static_cast<double>(hits) / samples;
  est.stderr_ =
      samples == 0 ? 0.0
                   : std::sqrt(est.value * (1.0 - est.value) / samples);
  return est;
}

Result<Estimate> KarpLubyDnf(const std::vector<std::vector<VarId>>& terms,
                             const std::vector<double>& probs,
                             uint64_t samples, Rng* rng) {
  if (terms.empty()) {
    return Estimate{0.0, 0.0, samples};
  }
  // Per-term probabilities and the union-bound total U.
  std::vector<double> term_probs(terms.size());
  double total = 0.0;
  for (size_t i = 0; i < terms.size(); ++i) {
    double p = 1.0;
    for (VarId v : terms[i]) {
      if (v >= probs.size()) {
        return Status::InvalidArgument("term variable outside weight map");
      }
      p *= probs[v];
    }
    term_probs[i] = p;
    total += p;
  }
  if (total == 0.0) {
    return Estimate{0.0, 0.0, samples};
  }
  // Cumulative distribution for term sampling.
  std::vector<double> cumulative(terms.size());
  double acc = 0.0;
  for (size_t i = 0; i < terms.size(); ++i) {
    acc += term_probs[i] / total;
    cumulative[i] = acc;
  }
  // All variables mentioned by any term.
  std::vector<VarId> all_vars;
  for (const auto& t : terms) {
    all_vars.insert(all_vars.end(), t.begin(), t.end());
  }
  std::sort(all_vars.begin(), all_vars.end());
  all_vars.erase(std::unique(all_vars.begin(), all_vars.end()),
                 all_vars.end());
  size_t max_var = all_vars.empty() ? 0 : all_vars.back() + 1;
  std::vector<bool> assignment(max_var, false);

  double sum = 0.0;
  double sum_sq = 0.0;
  for (uint64_t s = 0; s < samples; ++s) {
    // Pick a term proportional to its probability.
    double u = rng->NextDouble();
    size_t chosen =
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin();
    if (chosen >= terms.size()) chosen = terms.size() - 1;
    // Sample an assignment conditioned on the chosen term being true.
    for (VarId v : all_vars) assignment[v] = rng->Bernoulli(probs[v]);
    for (VarId v : terms[chosen]) assignment[v] = true;
    // Count how many terms the assignment satisfies (>= 1 by construction).
    size_t satisfied = 0;
    for (const auto& term : terms) {
      bool sat = true;
      for (VarId v : term) {
        if (!assignment[v]) {
          sat = false;
          break;
        }
      }
      if (sat) ++satisfied;
    }
    PDB_CHECK(satisfied >= 1);
    double x = total / static_cast<double>(satisfied);
    sum += x;
    sum_sq += x * x;
  }
  Estimate est;
  est.samples = samples;
  if (samples > 0) {
    est.value = sum / static_cast<double>(samples);
    double variance =
        std::max(0.0, sum_sq / static_cast<double>(samples) -
                          est.value * est.value);
    est.stderr_ = std::sqrt(variance / static_cast<double>(samples));
  }
  return est;
}

}  // namespace pdb
