#include "wmc/montecarlo.h"

#include <algorithm>
#include <cmath>

#include "exec/parallel.h"
#include "util/check.h"

namespace pdb {

namespace {

/// How often shard loops poll ExecContext::ShouldStop().
constexpr uint64_t kStopCheckStride = 512;

/// Samples assigned to shard `i` of `shards` for a total budget of
/// `samples`: the remainder spreads over the first shards.
uint64_t ShardBudget(uint64_t samples, uint64_t shards, uint64_t i) {
  return samples / shards + (i < samples % shards ? 1 : 0);
}

}  // namespace

uint64_t NumSampleShards(uint64_t samples) {
  // Shards of >= 1024 samples keep the per-shard RNG/setup cost in the
  // noise; 64 shards saturate any realistic pool while staying cheap to
  // merge. Small budgets stay in one shard.
  return std::clamp<uint64_t>(samples / 1024, 1, 64);
}

Estimate NaiveMonteCarlo(FormulaManager* mgr, NodeId root,
                         const std::vector<double>& probs, uint64_t samples,
                         Rng* rng, ExecContext* ctx) {
  // Warm the VarsOf cache before the fan-out: VarsOf mutates the manager,
  // Evaluate is a const traversal that workers may run concurrently.
  const std::vector<VarId> vars = mgr->VarsOf(root);
  size_t max_var = 0;
  for (VarId v : vars) max_var = std::max<size_t>(max_var, v);

  // The parent generator advances exactly once per call; all shards derive
  // their substreams from the resulting base state.
  Rng base(rng->Next());

  struct Shard {
    uint64_t hits = 0;
    uint64_t drawn = 0;
  };
  uint64_t shards = NumSampleShards(samples);
  std::vector<Shard> parts = ParallelMap<Shard>(ctx, shards, [&](size_t i) {
    Rng shard_rng = base.Split(i);
    std::vector<bool> assignment(vars.empty() ? 0 : max_var + 1, false);
    Shard part;
    uint64_t budget = ShardBudget(samples, shards, i);
    for (uint64_t s = 0; s < budget; ++s) {
      if (ctx && s % kStopCheckStride == 0 && ctx->ShouldStop()) break;
      for (VarId v : vars) assignment[v] = shard_rng.Bernoulli(probs[v]);
      if (mgr->Evaluate(root, assignment)) ++part.hits;
      ++part.drawn;
    }
    return part;
  });

  uint64_t hits = 0;
  uint64_t drawn = 0;
  for (const Shard& part : parts) {
    hits += part.hits;
    drawn += part.drawn;
  }
  if (ctx) ctx->AddSamples(drawn);

  Estimate est;
  est.samples = drawn;
  est.value = drawn == 0 ? 0.0 : static_cast<double>(hits) / drawn;
  est.std_error =
      drawn == 0 ? 0.0 : std::sqrt(est.value * (1.0 - est.value) / drawn);
  return est;
}

Result<Estimate> KarpLubyDnf(const std::vector<std::vector<VarId>>& terms,
                             const std::vector<double>& probs,
                             uint64_t samples, Rng* rng, ExecContext* ctx) {
  if (terms.empty()) {
    return Estimate{0.0, 0.0, samples};
  }
  // Per-term probabilities and the union-bound total U.
  std::vector<double> term_probs(terms.size());
  double total = 0.0;
  for (size_t i = 0; i < terms.size(); ++i) {
    double p = 1.0;
    for (VarId v : terms[i]) {
      if (v >= probs.size()) {
        return Status::InvalidArgument("term variable outside weight map");
      }
      p *= probs[v];
    }
    term_probs[i] = p;
    total += p;
  }
  if (total == 0.0) {
    return Estimate{0.0, 0.0, samples};
  }
  // Cumulative distribution for term sampling.
  std::vector<double> cumulative(terms.size());
  double acc = 0.0;
  for (size_t i = 0; i < terms.size(); ++i) {
    acc += term_probs[i] / total;
    cumulative[i] = acc;
  }
  // All variables mentioned by any term.
  std::vector<VarId> all_vars;
  for (const auto& t : terms) {
    all_vars.insert(all_vars.end(), t.begin(), t.end());
  }
  std::sort(all_vars.begin(), all_vars.end());
  all_vars.erase(std::unique(all_vars.begin(), all_vars.end()),
                 all_vars.end());
  size_t max_var = all_vars.empty() ? 0 : all_vars.back() + 1;

  Rng base(rng->Next());

  struct Shard {
    double sum = 0.0;
    double sum_sq = 0.0;
    uint64_t drawn = 0;
  };
  uint64_t shards = NumSampleShards(samples);
  std::vector<Shard> parts = ParallelMap<Shard>(ctx, shards, [&](size_t i) {
    Rng shard_rng = base.Split(i);
    std::vector<bool> assignment(max_var, false);
    Shard part;
    uint64_t budget = ShardBudget(samples, shards, i);
    for (uint64_t s = 0; s < budget; ++s) {
      if (ctx && s % kStopCheckStride == 0 && ctx->ShouldStop()) break;
      // Pick a term proportional to its probability.
      double u = shard_rng.NextDouble();
      size_t chosen =
          std::lower_bound(cumulative.begin(), cumulative.end(), u) -
          cumulative.begin();
      if (chosen >= terms.size()) chosen = terms.size() - 1;
      // Sample an assignment conditioned on the chosen term being true.
      for (VarId v : all_vars) assignment[v] = shard_rng.Bernoulli(probs[v]);
      for (VarId v : terms[chosen]) assignment[v] = true;
      // Count how many terms the assignment satisfies (>= 1 by
      // construction).
      size_t satisfied = 0;
      for (const auto& term : terms) {
        bool sat = true;
        for (VarId v : term) {
          if (!assignment[v]) {
            sat = false;
            break;
          }
        }
        if (sat) ++satisfied;
      }
      PDB_CHECK(satisfied >= 1);
      double x = total / static_cast<double>(satisfied);
      part.sum += x;
      part.sum_sq += x * x;
      ++part.drawn;
    }
    return part;
  });

  // Merge in shard order: floating-point sums are order-dependent, and the
  // fixed order is what makes the estimate thread-count invariant.
  double sum = 0.0;
  double sum_sq = 0.0;
  uint64_t drawn = 0;
  for (const Shard& part : parts) {
    sum += part.sum;
    sum_sq += part.sum_sq;
    drawn += part.drawn;
  }
  if (ctx) ctx->AddSamples(drawn);

  Estimate est;
  est.samples = drawn;
  if (drawn > 0) {
    est.value = sum / static_cast<double>(drawn);
    double variance = std::max(
        0.0, sum_sq / static_cast<double>(drawn) - est.value * est.value);
    est.std_error = std::sqrt(variance / static_cast<double>(drawn));
  }
  return est;
}

}  // namespace pdb
