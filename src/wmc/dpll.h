/// \file dpll.h
/// \brief DPLL-style exact weighted model counting (paper §7).
///
/// Full backtracking search in the style of Cachet/sharpSAT: Shannon
/// expansion (rule 11), formula caching (hash-consing makes equal
/// subformulas identical node ids), and connected-component decomposition of
/// conjunctions (rule 12). The search trace can be recorded through a
/// `DpllTraceSink`, which — per Huang & Darwiche — yields a decision-DNNF
/// (see kc/trace_compiler.h).
///
/// Weighted counts are computed relative to the variable set of each
/// subformula; variables eliminated by simplification are re-introduced as
/// (w + w̄) factors, so general (even negative) weights are supported.

#ifndef PDB_WMC_DPLL_H_
#define PDB_WMC_DPLL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "boolean/formula.h"
#include "exec/context.h"
#include "wmc/weights.h"
#include "wmc/wmc_cache.h"

namespace pdb {

/// Receives the search trace of a DPLL run; implemented by the knowledge
/// compiler (kc/trace_compiler.h) to build a decision-DNNF.
class DpllTraceSink {
 public:
  /// Opaque reference to a trace node.
  using Ref = uint64_t;

  virtual ~DpllTraceSink() = default;
  virtual Ref TrueNode() = 0;
  virtual Ref FalseNode() = 0;
  /// A Shannon expansion on `var`: lo is the false branch, hi the true one.
  virtual Ref Decision(VarId var, Ref lo, Ref hi) = 0;
  /// A component split: conjunction of variable-disjoint children.
  virtual Ref AndNode(const std::vector<Ref>& children) = 0;
};

/// Variable selection strategies for the Shannon expansion.
enum class DpllHeuristic {
  kLowestVar,        ///< smallest VarId first (a static order)
  kMostOccurrences,  ///< variable occurring in most DAG nodes first
};

/// Options for a DPLL run.
struct DpllOptions {
  bool use_components = true;
  DpllHeuristic heuristic = DpllHeuristic::kMostOccurrences;
  /// Abort with ResourceExhausted after this many Shannon expansions.
  uint64_t max_decisions = UINT64_MAX;
  /// Optional trace sink; may be null.
  DpllTraceSink* trace = nullptr;
  /// Optional execution context; may be null. The counter polls its
  /// deadline/cancel signal every few decisions and aborts with
  /// DeadlineExceeded (resp. ResourceExhausted) so hard instances degrade
  /// gracefully to sampling instead of hanging; on success it feeds the
  /// context's cache-hit counter.
  ExecContext* exec = nullptr;
  /// Count variable-disjoint components on separate pool workers when
  /// `exec` carries a pool (and no trace sink is attached — the trace is
  /// inherently sequential). Each component is cloned into a private
  /// FormulaManager with `ExportTo` (the shared manager is not
  /// thread-safe); the monotone clone keeps the child search isomorphic to
  /// the sequential one, and child results are multiplied in component
  /// order on the calling thread, so the count is bit-identical to the
  /// sequential run. Children poll the shared ExecContext, so deadlines
  /// and cancellation propagate into every branch. The one semantic
  /// divergence: `max_decisions` is granted per parallel subtree rather
  /// than shared globally, and child cache entries are not visible to the
  /// rest of the parent search — so near the budget limit the parallel and
  /// sequential searches may exhaust it at different points. The computed
  /// value, when both succeed, is bit-identical.
  bool parallel_components = true;
  /// Minimum variables under a conjunction before its components are
  /// solved in parallel; smaller splits stay sequential (cloning overhead
  /// would dominate).
  size_t parallel_min_vars = 24;
  /// Optional session-owned cross-query cache (wmc/wmc_cache.h), probed
  /// after the counter's local NodeId cache and published to on every
  /// non-trivial subresult. Keys are canonical structural signatures plus a
  /// weight fingerprint, so a hit short-circuits an *identical* subproblem
  /// and the returned count is bit-identical to recomputing it. Ignored
  /// while a trace sink is attached (the trace must actually be built).
  /// Parallel component children inherit the pointer, so sibling components
  /// and concurrent queries of one session see each other's work.
  WmcCache* shared_cache = nullptr;
  /// Minimum variables in a subformula before the shared cache is probed;
  /// below this the signature/fingerprint hashing costs more than the
  /// Shannon expansion it would save.
  size_t shared_cache_min_vars = 4;
};

/// Statistics of a DPLL run (parallel children are merged in).
struct DpllStats {
  uint64_t decisions = 0;
  uint64_t cache_hits = 0;
  uint64_t component_splits = 0;
  /// Component splits whose children were solved on pool workers.
  uint64_t parallel_splits = 0;
  /// Probes answered by the session-shared cross-query cache.
  uint64_t shared_hits = 0;
  /// Probes of the shared cache that missed.
  uint64_t shared_misses = 0;
  /// Wall nanoseconds spent probing the shared cache. Timed only while a
  /// QueryTrace is attached to the ExecContext (clock reads are not free);
  /// 0 whenever tracing is off.
  uint64_t shared_probe_ns = 0;
};

/// Exact weighted model counter.
class DpllCounter {
 public:
  DpllCounter(FormulaManager* mgr, WeightMap weights, DpllOptions options = {})
      : mgr_(mgr), weights_(std::move(weights)), options_(options) {}

  /// WMC of `root` relative to its own variable set. With probability
  /// weights this is exactly the probability of the formula.
  Result<double> Compute(NodeId root);

  const DpllStats& stats() const { return stats_; }

  /// Trace reference of the most recent Compute (valid when a sink is set).
  DpllTraceSink::Ref root_trace() const { return root_trace_; }

 private:
  struct CacheEntry {
    double value = 0;
    DpllTraceSink::Ref trace = 0;
  };

  Result<CacheEntry> Count(NodeId f);
  /// Solves the component groups of conjunction `f` on pool workers and
  /// returns the (deterministically merged) product. `groups` holds the
  /// components' child lists in canonical (ascending smallest-VarId)
  /// order — the same order the sequential loop multiplies in.
  Result<CacheEntry> CountComponentsParallel(
      NodeId f, const std::vector<std::vector<NodeId>>& groups);
  /// Shared-cache key for `f`, or nullopt when the shared cache is off,
  /// a trace sink is attached, or `f` is below the probe threshold.
  std::optional<WmcCache::Key> SharedKey(NodeId f);
  VarId ChooseVar(NodeId f);
  /// Product of (w+w̄) over variables in `all` but not in `sub`.
  double FreedVarsFactor(const std::vector<VarId>& all,
                         const std::vector<VarId>& sub, VarId decided);

  FormulaManager* mgr_;
  WeightMap weights_;
  DpllOptions options_;
  DpllStats stats_;
  std::unordered_map<NodeId, CacheEntry> cache_;
  DpllTraceSink::Ref root_trace_ = 0;
};

}  // namespace pdb

#endif  // PDB_WMC_DPLL_H_
