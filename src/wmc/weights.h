/// \file weights.h
/// \brief Variable weights for weighted model counting.
///
/// Following the paper's appendix, every Boolean variable carries a weight
/// pair (w, w̄) for its true/false polarities. Probabilities are the special
/// case (p, 1-p); MLN factor variables and skolemization atoms use general —
/// possibly negative — weights, e.g. the (1, -1) pair of Van den Broeck's
/// skolemization.

#ifndef PDB_WMC_WEIGHTS_H_
#define PDB_WMC_WEIGHTS_H_

#include <vector>

#include "util/rational.h"

namespace pdb {

/// Real weight pair (w for true, w_false for false).
struct WeightPair {
  double w_true = 1.0;
  double w_false = 1.0;

  static WeightPair Probability(double p) { return {p, 1.0 - p}; }
  /// MLN-style weight w: (w, 1).
  static WeightPair MlnWeight(double w) { return {w, 1.0}; }
  /// Skolemization pair (1, -1).
  static WeightPair Skolem() { return {1.0, -1.0}; }

  double sum() const { return w_true + w_false; }
};

/// Weights for variables 0..n-1.
using WeightMap = std::vector<WeightPair>;

/// Builds the probability-semantics weight map for tuple probabilities.
WeightMap WeightsFromProbabilities(const std::vector<double>& probs);

/// Exact rational weight pair (for the exact oracles and the symmetric
/// module).
struct RationalWeightPair {
  BigRational w_true = BigRational(1);
  BigRational w_false = BigRational(1);

  static RationalWeightPair Probability(const BigRational& p) {
    return {p, BigRational(1) - p};
  }
  static RationalWeightPair Skolem() { return {BigRational(1), BigRational(-1)}; }

  BigRational sum() const { return w_true + w_false; }
};

using RationalWeightMap = std::vector<RationalWeightPair>;

/// Exact weights from double probabilities (doubles convert exactly).
RationalWeightMap RationalWeightsFromProbabilities(
    const std::vector<double>& probs);

}  // namespace pdb

#endif  // PDB_WMC_WEIGHTS_H_
