#include "wmc/wmc_cache.h"

#include <algorithm>
#include <bit>

#include "util/check.h"

namespace pdb {

namespace {

/// splitmix64 finalizer (same avalanche core as the signature mixing).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Charged per entry: the slot itself plus the index bucket/node overhead
/// of the unordered_map (pointer-chained buckets on the common ABI).
constexpr size_t kEntryBytes =
    sizeof(WmcCache::Key) + sizeof(double) + /*clock+index overhead=*/64;

}  // namespace

uint64_t WeightFingerprint(const std::vector<VarId>& vars,
                           const WeightMap& weights) {
  uint64_t fp = 0x51afd7ed558ccd00ULL;
  for (VarId v : vars) {
    PDB_CHECK(v < weights.size());
    fp = Mix64(fp ^ v);
    fp = Mix64(fp + std::bit_cast<uint64_t>(weights[v].w_true));
    fp = Mix64(fp ^ std::bit_cast<uint64_t>(weights[v].w_false));
  }
  return fp;
}

WmcCache::WmcCache(WmcCacheOptions options) {
  size_t shards = std::max<size_t>(1, options.num_shards);
  size_t shard_bytes = options.max_bytes / shards;
  slots_per_shard_ = std::max<size_t>(1, shard_bytes / kEntryBytes);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::optional<double> WmcCache::Lookup(const Key& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  Slot& slot = shard.slots[it->second];
  slot.referenced = true;
  return slot.value;
}

void WmcCache::Insert(const Key& key, double value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.slots[it->second].referenced = true;
    return;
  }
  ++shard.inserts;
  if (shard.slots.size() < slots_per_shard_) {
    shard.index.emplace(key, shard.slots.size());
    shard.slots.push_back({key, value, true});
    return;
  }
  // CLOCK sweep: give referenced entries a second chance, reuse the first
  // cold slot. Bounded — after one full lap every reference bit is clear,
  // so the sweep terminates within two laps.
  for (;;) {
    Slot& candidate = shard.slots[shard.clock_hand];
    if (candidate.referenced) {
      candidate.referenced = false;
      shard.clock_hand = (shard.clock_hand + 1) % shard.slots.size();
      continue;
    }
    shard.index.erase(candidate.key);
    ++shard.evictions;
    shard.index.emplace(key, shard.clock_hand);
    candidate = {key, value, true};
    shard.clock_hand = (shard.clock_hand + 1) % shard.slots.size();
    return;
  }
}

std::vector<std::pair<WmcCache::Key, double>> WmcCache::Export() const {
  std::vector<std::pair<Key, double>> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.reserve(out.size() + shard->slots.size());
    for (const Slot& slot : shard->slots) {
      out.emplace_back(slot.key, slot.value);
    }
  }
  return out;
}

void WmcCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->index.clear();
    shard->slots.clear();
    shard->clock_hand = 0;
  }
}

WmcCacheStats WmcCache::stats() const {
  WmcCacheStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.inserts += shard->inserts;
    total.evictions += shard->evictions;
    total.entries += shard->slots.size();
  }
  total.bytes = total.entries * kEntryBytes;
  return total;
}

}  // namespace pdb
