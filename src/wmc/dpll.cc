#include "wmc/dpll.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

namespace {

// Union-find for component grouping.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<double> DpllCounter::Compute(NodeId root) {
  if (options_.exec && options_.exec->ShouldStop()) {
    return options_.exec->cancelled()
               ? Status::ResourceExhausted("DPLL cancelled before start")
               : Status::DeadlineExceeded("deadline expired before DPLL");
  }
  auto entry = Count(root);
  if (options_.exec) options_.exec->AddCacheHits(stats_.cache_hits);
  if (!entry.ok()) return entry.status();
  root_trace_ = entry->trace;
  return entry->value;
}

VarId DpllCounter::ChooseVar(NodeId f) {
  const std::vector<VarId>& vars = mgr_->VarsOf(f);
  PDB_CHECK(!vars.empty());
  if (options_.heuristic == DpllHeuristic::kLowestVar) return vars[0];
  // kMostOccurrences: the variable contained in the most top-level children.
  FormulaKind k = mgr_->kind(f);
  if (k != FormulaKind::kAnd && k != FormulaKind::kOr) return vars[0];
  std::map<VarId, size_t> counts;
  for (NodeId c : mgr_->children(f)) {
    for (VarId v : mgr_->VarsOf(c)) ++counts[v];
  }
  VarId best = vars[0];
  size_t best_count = 0;
  for (const auto& [v, n] : counts) {
    if (n > best_count) {
      best = v;
      best_count = n;
    }
  }
  return best;
}

double DpllCounter::FreedVarsFactor(const std::vector<VarId>& all,
                                    const std::vector<VarId>& sub,
                                    VarId decided) {
  double factor = 1.0;
  size_t j = 0;
  for (VarId v : all) {
    while (j < sub.size() && sub[j] < v) ++j;
    bool in_sub = j < sub.size() && sub[j] == v;
    if (!in_sub && v != decided) factor *= weights_[v].sum();
  }
  return factor;
}

Result<DpllCounter::CacheEntry> DpllCounter::Count(NodeId f) {
  DpllTraceSink* sink = options_.trace;
  switch (mgr_->kind(f)) {
    case FormulaKind::kTrue:
      return CacheEntry{1.0, sink ? sink->TrueNode() : 0};
    case FormulaKind::kFalse:
      return CacheEntry{0.0, sink ? sink->FalseNode() : 0};
    case FormulaKind::kVar: {
      VarId v = mgr_->var(f);
      CacheEntry entry{weights_[v].w_true, 0};
      if (sink) {
        entry.trace = sink->Decision(v, sink->FalseNode(), sink->TrueNode());
      }
      return entry;
    }
    default:
      break;
  }
  auto it = cache_.find(f);
  if (it != cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }

  CacheEntry result;
  // Negative literal: !x.
  if (mgr_->kind(f) == FormulaKind::kNot &&
      mgr_->kind(mgr_->children(f)[0]) == FormulaKind::kVar) {
    VarId v = mgr_->var(mgr_->children(f)[0]);
    result.value = weights_[v].w_false;
    if (sink) {
      result.trace = sink->Decision(v, sink->TrueNode(), sink->FalseNode());
    }
    cache_.emplace(f, result);
    return result;
  }

  // Connected-component decomposition of conjunctions.
  if (options_.use_components && mgr_->kind(f) == FormulaKind::kAnd) {
    auto kids = mgr_->children(f);
    UnionFind uf(kids.size());
    std::map<VarId, size_t> first_child_of_var;
    for (size_t i = 0; i < kids.size(); ++i) {
      for (VarId v : mgr_->VarsOf(kids[i])) {
        auto [pos, inserted] = first_child_of_var.emplace(v, i);
        if (!inserted) uf.Union(i, pos->second);
      }
    }
    std::map<size_t, std::vector<NodeId>> groups;
    for (size_t i = 0; i < kids.size(); ++i) {
      groups[uf.Find(i)].push_back(kids[i]);
    }
    if (groups.size() > 1) {
      ++stats_.component_splits;
      double product = 1.0;
      std::vector<DpllTraceSink::Ref> refs;
      for (auto& [rep, members] : groups) {
        NodeId component = mgr_->And(members);
        PDB_ASSIGN_OR_RETURN(CacheEntry sub, Count(component));
        product *= sub.value;
        if (sink) refs.push_back(sub.trace);
      }
      result.value = product;
      if (sink) result.trace = sink->AndNode(refs);
      cache_.emplace(f, result);
      return result;
    }
  }

  // Shannon expansion.
  if (++stats_.decisions > options_.max_decisions) {
    return Status::ResourceExhausted(
        StrFormat("DPLL exceeded %llu decisions",
                  static_cast<unsigned long long>(options_.max_decisions)));
  }
  // Poll the cooperative stop signal every 64 decisions: cheap relative to
  // a Shannon expansion, prompt enough for millisecond-scale deadlines.
  if (options_.exec && stats_.decisions % 64 == 0 &&
      options_.exec->ShouldStop()) {
    return options_.exec->cancelled()
               ? Status::ResourceExhausted(
                     StrFormat("DPLL cancelled after %llu decisions",
                               static_cast<unsigned long long>(
                                   stats_.decisions)))
               : Status::DeadlineExceeded(
                     StrFormat("DPLL deadline exceeded after %llu decisions",
                               static_cast<unsigned long long>(
                                   stats_.decisions)));
  }
  VarId v = ChooseVar(f);
  const std::vector<VarId> all_vars = mgr_->VarsOf(f);  // copy: map may grow
  NodeId f0 = mgr_->Cofactor(f, v, false);
  NodeId f1 = mgr_->Cofactor(f, v, true);
  PDB_ASSIGN_OR_RETURN(CacheEntry e0, Count(f0));
  PDB_ASSIGN_OR_RETURN(CacheEntry e1, Count(f1));
  double corr0 = FreedVarsFactor(all_vars, mgr_->VarsOf(f0), v);
  double corr1 = FreedVarsFactor(all_vars, mgr_->VarsOf(f1), v);
  result.value = weights_[v].w_false * e0.value * corr0 +
                 weights_[v].w_true * e1.value * corr1;
  if (sink) result.trace = sink->Decision(v, e0.trace, e1.trace);
  cache_.emplace(f, result);
  return result;
}

}  // namespace pdb
