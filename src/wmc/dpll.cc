#include "wmc/dpll.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <numeric>
#include <utility>

#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

namespace {

// Union-find for component grouping.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

#ifdef PDB_ASSERTIONS
/// The component invariant: groups must partition the conjunction's
/// children into pairwise variable-disjoint sets.
bool GroupsAreVarDisjoint(FormulaManager* mgr,
                          const std::vector<std::vector<NodeId>>& groups) {
  std::vector<VarId> all;
  for (const auto& members : groups) {
    for (NodeId m : members) {
      const std::vector<VarId>& vars = mgr->VarsOf(m);
      all.insert(all.end(), vars.begin(), vars.end());
    }
  }
  // Within a group members may share variables; across groups they must
  // not, so every variable's occurrences must stay inside one group.
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  size_t covered = 0;
  for (const auto& members : groups) {
    std::vector<VarId> group_vars;
    for (NodeId m : members) {
      const std::vector<VarId>& vars = mgr->VarsOf(m);
      group_vars.insert(group_vars.end(), vars.begin(), vars.end());
    }
    std::sort(group_vars.begin(), group_vars.end());
    group_vars.erase(std::unique(group_vars.begin(), group_vars.end()),
                     group_vars.end());
    covered += group_vars.size();
  }
  return covered == all.size();
}
#endif

}  // namespace

Result<double> DpllCounter::Compute(NodeId root) {
  if (options_.exec && options_.exec->ShouldStop()) {
    return options_.exec->cancelled()
               ? Status::ResourceExhausted("DPLL cancelled before start")
               : Status::DeadlineExceeded("deadline expired before DPLL");
  }
  auto entry = Count(root);
  if (options_.exec) {
    options_.exec->AddCacheHits(stats_.cache_hits);
    options_.exec->AddDpllDecisions(stats_.decisions);
    options_.exec->AddDpllComponentSplits(stats_.component_splits);
    options_.exec->AddDpllParallelSplits(stats_.parallel_splits);
    options_.exec->AddWmcSharedHits(stats_.shared_hits);
    options_.exec->AddWmcSharedMisses(stats_.shared_misses);
  }
  if (!entry.ok()) return entry.status();
  root_trace_ = entry->trace;
  return entry->value;
}

VarId DpllCounter::ChooseVar(NodeId f) {
  const std::vector<VarId>& vars = mgr_->VarsOf(f);
  PDB_CHECK(!vars.empty());
  if (options_.heuristic == DpllHeuristic::kLowestVar) return vars[0];
  // kMostOccurrences: the variable contained in the most top-level children.
  FormulaKind k = mgr_->kind(f);
  if (k != FormulaKind::kAnd && k != FormulaKind::kOr) return vars[0];
  std::map<VarId, size_t> counts;
  for (NodeId c : mgr_->children(f)) {
    for (VarId v : mgr_->VarsOf(c)) ++counts[v];
  }
  VarId best = vars[0];
  size_t best_count = 0;
  for (const auto& [v, n] : counts) {
    if (n > best_count) {
      best = v;
      best_count = n;
    }
  }
  return best;
}

double DpllCounter::FreedVarsFactor(const std::vector<VarId>& all,
                                    const std::vector<VarId>& sub,
                                    VarId decided) {
  double factor = 1.0;
  size_t j = 0;
  for (VarId v : all) {
    while (j < sub.size() && sub[j] < v) ++j;
    bool in_sub = j < sub.size() && sub[j] == v;
    if (!in_sub && v != decided) factor *= weights_[v].sum();
  }
  return factor;
}

Result<DpllCounter::CacheEntry> DpllCounter::Count(NodeId f) {
  DpllTraceSink* sink = options_.trace;
  switch (mgr_->kind(f)) {
    case FormulaKind::kTrue:
      return CacheEntry{1.0, sink ? sink->TrueNode() : 0};
    case FormulaKind::kFalse:
      return CacheEntry{0.0, sink ? sink->FalseNode() : 0};
    case FormulaKind::kVar: {
      VarId v = mgr_->var(f);
      CacheEntry entry{weights_[v].w_true, 0};
      if (sink) {
        entry.trace = sink->Decision(v, sink->FalseNode(), sink->TrueNode());
      }
      return entry;
    }
    default:
      break;
  }
  auto it = cache_.find(f);
  if (it != cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }

  CacheEntry result;
  // Negative literal: !x.
  if (mgr_->kind(f) == FormulaKind::kNot &&
      mgr_->kind(mgr_->children(f)[0]) == FormulaKind::kVar) {
    VarId v = mgr_->var(mgr_->children(f)[0]);
    result.value = weights_[v].w_false;
    if (sink) {
      result.trace = sink->Decision(v, sink->TrueNode(), sink->FalseNode());
    }
    cache_.emplace(f, result);
    return result;
  }

  // Session-shared cross-query cache: probed after the local NodeId cache
  // (which is a plain hash lookup, no hashing of structure) and only for
  // subformulas big enough to amortise the signature/fingerprint cost. A
  // hit is an identical subproblem — same unordered structure, same
  // weights — so the cached double is bit-identical to what the search
  // below would compute (the search is canonical in the unordered
  // structure: see the component ordering note).
  std::optional<WmcCache::Key> shared_key = SharedKey(f);
  if (shared_key) {
    // Probe latency is measured only while a trace rides on the context:
    // two clock reads per probe are noise for a postmortem but not for the
    // untraced hot path.
    const bool timed = options_.exec && options_.exec->trace() != nullptr;
    std::chrono::steady_clock::time_point probe_start;
    if (timed) probe_start = std::chrono::steady_clock::now();
    std::optional<double> hit = options_.shared_cache->Lookup(*shared_key);
    if (timed) {
      stats_.shared_probe_ns += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - probe_start)
              .count());
    }
    if (hit) {
      ++stats_.shared_hits;
      result.value = *hit;
      cache_.emplace(f, result);
      return result;
    }
    ++stats_.shared_misses;
  }

  // Connected-component decomposition of conjunctions.
  if (options_.use_components && mgr_->kind(f) == FormulaKind::kAnd) {
    auto kids = mgr_->children(f);
    UnionFind uf(kids.size());
    std::map<VarId, size_t> first_child_of_var;
    for (size_t i = 0; i < kids.size(); ++i) {
      for (VarId v : mgr_->VarsOf(kids[i])) {
        auto [pos, inserted] = first_child_of_var.emplace(v, i);
        if (!inserted) uf.Union(i, pos->second);
      }
    }
    std::map<size_t, std::vector<NodeId>> by_rep;
    for (size_t i = 0; i < kids.size(); ++i) {
      by_rep[uf.Find(i)].push_back(kids[i]);
    }
    if (by_rep.size() > 1) {
      // Canonical component order: ascending smallest VarId. The partition
      // itself is a pure function of the unordered structure, but the
      // union-find representative is a child *index*, which follows the
      // manager-local NodeId order — multiplying in rep order would make
      // the product's rounding depend on interning history, and cross-
      // manager shared-cache hits would no longer be bit-identical.
      // Components are variable-disjoint, so their smallest VarIds are
      // distinct and give a canonical total order.
      std::vector<std::pair<VarId, std::vector<NodeId>>> tagged;
      tagged.reserve(by_rep.size());
      for (auto& [rep, members] : by_rep) {
        VarId min_var = mgr_->VarsOf(members[0]).front();
        for (NodeId m : members) {
          min_var = std::min(min_var, mgr_->VarsOf(m).front());
        }
        tagged.emplace_back(min_var, std::move(members));
      }
      std::sort(tagged.begin(), tagged.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      std::vector<std::vector<NodeId>> groups;
      groups.reserve(tagged.size());
      for (auto& [min_var, members] : tagged) {
        groups.push_back(std::move(members));
      }
      PDB_ASSERT(GroupsAreVarDisjoint(mgr_, groups));
      ++stats_.component_splits;
      if (options_.parallel_components && options_.exec &&
          options_.exec->pool() && sink == nullptr &&
          mgr_->VarsOf(f).size() >= options_.parallel_min_vars) {
        auto parallel = CountComponentsParallel(f, groups);
        if (parallel.ok() && shared_key) {
          options_.shared_cache->Insert(*shared_key, parallel->value);
        }
        return parallel;
      }
      double product = 1.0;
      std::vector<DpllTraceSink::Ref> refs;
      for (const auto& members : groups) {
        NodeId component = mgr_->And(members);
        PDB_ASSIGN_OR_RETURN(CacheEntry sub, Count(component));
        product *= sub.value;
        if (sink) refs.push_back(sub.trace);
      }
      result.value = product;
      if (sink) result.trace = sink->AndNode(refs);
      cache_.emplace(f, result);
      if (shared_key) options_.shared_cache->Insert(*shared_key, result.value);
      return result;
    }
  }

  // Shannon expansion.
  if (++stats_.decisions > options_.max_decisions) {
    return Status::ResourceExhausted(
        StrFormat("DPLL exceeded %llu decisions",
                  static_cast<unsigned long long>(options_.max_decisions)));
  }
  // Poll the cooperative stop signal every 64 decisions: cheap relative to
  // a Shannon expansion, prompt enough for millisecond-scale deadlines.
  if (options_.exec && stats_.decisions % 64 == 0 &&
      options_.exec->ShouldStop()) {
    return options_.exec->cancelled()
               ? Status::ResourceExhausted(
                     StrFormat("DPLL cancelled after %llu decisions",
                               static_cast<unsigned long long>(
                                   stats_.decisions)))
               : Status::DeadlineExceeded(
                     StrFormat("DPLL deadline exceeded after %llu decisions",
                               static_cast<unsigned long long>(
                                   stats_.decisions)));
  }
  VarId v = ChooseVar(f);
  const std::vector<VarId> all_vars = mgr_->VarsOf(f);  // copy: map may grow
  NodeId f0 = mgr_->Cofactor(f, v, false);
  NodeId f1 = mgr_->Cofactor(f, v, true);
  PDB_ASSIGN_OR_RETURN(CacheEntry e0, Count(f0));
  PDB_ASSIGN_OR_RETURN(CacheEntry e1, Count(f1));
  double corr0 = FreedVarsFactor(all_vars, mgr_->VarsOf(f0), v);
  double corr1 = FreedVarsFactor(all_vars, mgr_->VarsOf(f1), v);
  result.value = weights_[v].w_false * e0.value * corr0 +
                 weights_[v].w_true * e1.value * corr1;
  if (sink) result.trace = sink->Decision(v, e0.trace, e1.trace);
  cache_.emplace(f, result);
  if (shared_key) options_.shared_cache->Insert(*shared_key, result.value);
  return result;
}

std::optional<WmcCache::Key> DpllCounter::SharedKey(NodeId f) {
  if (options_.shared_cache == nullptr || options_.trace != nullptr) {
    return std::nullopt;
  }
  const std::vector<VarId>& vars = mgr_->VarsOf(f);
  if (vars.size() < options_.shared_cache_min_vars) return std::nullopt;
  WmcCache::Key key;
  key.sig = mgr_->SignatureOf(f);
  key.weight_fp = WeightFingerprint(vars, weights_);
  return key;
}

Result<DpllCounter::CacheEntry> DpllCounter::CountComponentsParallel(
    NodeId f, const std::vector<std::vector<NodeId>>& groups) {
  ++stats_.parallel_splits;
  // Clone every component into a private manager up front, on the calling
  // thread: the shared manager is mutable (hash-consing, VarsOf/Cofactor
  // memos) and must not be touched from workers. Clones preserve variable
  // ids and relative node order (ExportTo), so each child search is
  // isomorphic to what the sequential recursion would have done.
  struct ChildTask {
    std::unique_ptr<FormulaManager> mgr;
    NodeId root = 0;
  };
  std::vector<ChildTask> tasks;
  tasks.reserve(groups.size());
  for (const auto& members : groups) {
    NodeId component = mgr_->And(members);
    ChildTask task;
    task.mgr = std::make_unique<FormulaManager>();
    task.root = mgr_->ExportTo(component, task.mgr.get());
    tasks.push_back(std::move(task));
  }
  // Saturating: every child of an earlier parallel split was granted the
  // full remaining budget, so after a successful split the summed child
  // decisions can exceed max_decisions — a plain subtraction would wrap
  // and hand later children an effectively unlimited budget.
  const uint64_t remaining_decisions =
      options_.max_decisions == UINT64_MAX ? UINT64_MAX
      : stats_.decisions >= options_.max_decisions
          ? 0
          : options_.max_decisions - stats_.decisions;

  // One child counter per component, run via ParallelReduce: workers claim
  // components (the caller participates, so a saturated or nested pool
  // degrades to inline execution rather than deadlocking), results are
  // materialised per component and folded on this thread in canonical
  // (ascending smallest-VarId) order — the exact multiplication order of
  // the sequential loop, so the product is bit-identical. Children inherit
  // the session-shared cache pointer, so sibling components publish to and
  // probe one cache while the search runs.
  struct Outcome {
    double product = 1.0;
    Status status;
    DpllStats stats;
  };
  Outcome merged = ParallelReduce<Outcome>(
      options_.exec, tasks.size(), Outcome{},
      [&](size_t i) {
        DpllOptions child_options = options_;
        child_options.trace = nullptr;
        child_options.max_decisions = remaining_decisions;
        // Weights are indexed by VarId, which the clone preserves.
        DpllCounter child(tasks[i].mgr.get(), weights_, child_options);
        Outcome out;
        auto entry = child.Count(tasks[i].root);
        out.stats = child.stats_;
        if (entry.ok()) {
          out.product = entry->value;
        } else {
          out.status = entry.status();
        }
        return out;
      },
      [](Outcome acc, Outcome part) {
        acc.product *= part.product;
        if (acc.status.ok() && !part.status.ok()) acc.status = part.status;
        acc.stats.decisions += part.stats.decisions;
        acc.stats.cache_hits += part.stats.cache_hits;
        acc.stats.component_splits += part.stats.component_splits;
        acc.stats.parallel_splits += part.stats.parallel_splits;
        acc.stats.shared_hits += part.stats.shared_hits;
        acc.stats.shared_misses += part.stats.shared_misses;
        acc.stats.shared_probe_ns += part.stats.shared_probe_ns;
        return acc;
      });
  stats_.decisions += merged.stats.decisions;
  stats_.cache_hits += merged.stats.cache_hits;
  stats_.component_splits += merged.stats.component_splits;
  stats_.parallel_splits += merged.stats.parallel_splits;
  stats_.shared_hits += merged.stats.shared_hits;
  stats_.shared_misses += merged.stats.shared_misses;
  stats_.shared_probe_ns += merged.stats.shared_probe_ns;
  PDB_RETURN_NOT_OK(merged.status);
  CacheEntry result;
  result.value = merged.product;
  cache_.emplace(f, result);
  return result;
}

}  // namespace pdb
