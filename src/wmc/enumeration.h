/// \file enumeration.h
/// \brief Brute-force model enumeration: the ground-truth oracle.
///
/// Exponential in the number of variables; used in tests and as the exact
/// reference for every other inference method. WMC over a variable set V
/// (superset of the formula's variables) sums Π-weights over all 2^|V|
/// assignments; with probability weights and V = vars(F) this is exactly
/// p(F).

#ifndef PDB_WMC_ENUMERATION_H_
#define PDB_WMC_ENUMERATION_H_

#include "boolean/formula.h"
#include "wmc/weights.h"

namespace pdb {

/// Max variables accepted by the double enumerator.
inline constexpr size_t kMaxEnumerationVars = 30;
/// Max variables accepted by the exact enumerator.
inline constexpr size_t kMaxExactEnumerationVars = 24;

/// Probability that `root` is true when each variable v is independently
/// true with probability weights[v] interpreted as (p, 1-p) pairs must hold
/// w_true + w_false == 1. Use EnumerateWmc for general weights.
Result<double> EnumerateProbability(FormulaManager* mgr, NodeId root,
                                    const std::vector<double>& probs);

/// Weighted model count over exactly the variables of `root`.
Result<double> EnumerateWmc(FormulaManager* mgr, NodeId root,
                            const WeightMap& weights);

/// Exact rational versions of the above.
Result<BigRational> EnumerateProbabilityExact(
    FormulaManager* mgr, NodeId root, const std::vector<double>& probs);
Result<BigRational> EnumerateWmcExact(FormulaManager* mgr, NodeId root,
                                      const RationalWeightMap& weights);

/// Unweighted model count #F over the variables of `root` (exact).
Result<BigInt> CountModels(FormulaManager* mgr, NodeId root);

}  // namespace pdb

#endif  // PDB_WMC_ENUMERATION_H_
