/// \file plan.h
/// \brief Extensional query plans over probabilistic relations (paper §6).
///
/// Plans are trees of three operators:
///  * Scan(atom)      — reads a relation, binding the atom's variables;
///  * Join(l, r)      — natural join on shared variables, probabilities
///                      multiplied (independent-AND per tuple pair);
///  * Project(child, keep) — group-by on `keep`, combining group
///                      probabilities with u ⊕ v = 1 - (1-u)(1-v)
///                      (independent-OR).
/// Executing a plan for a Boolean query yields one number. A *safe* plan
/// returns exactly p_D(Q); any plan — safe or not — returns an upper bound
/// (Theorem 6.1), and run on the dissociated database it returns a lower
/// bound.

#ifndef PDB_PLANS_PLAN_H_
#define PDB_PLANS_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "logic/cq.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdb {

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

enum class PlanKind {
  kScan,
  kJoin,
  kProject,
};

/// One operator of a query plan (immutable, shared).
class PlanNode {
 public:
  /// Scan of the relation named by `atom.predicate`; constants select,
  /// repeated variables filter, distinct variables become columns.
  static PlanPtr Scan(Atom atom);
  /// Natural join on the shared variables.
  static PlanPtr Join(PlanPtr left, PlanPtr right);
  /// Independent-project: keep `keep` columns, ⊕-aggregate duplicates.
  static PlanPtr Project(PlanPtr child, std::vector<std::string> keep);

  PlanKind kind() const { return kind_; }
  const Atom& atom() const { return atom_; }
  const PlanPtr& left() const { return left_; }
  const PlanPtr& right() const { return right_; }
  const PlanPtr& child() const { return left_; }
  const std::vector<std::string>& keep() const { return keep_; }

  /// Output variables (sorted).
  const std::vector<std::string>& output_vars() const { return output_vars_; }

  /// e.g. "Project{}(Join(Scan(R(x)), Project{x}(Scan(S(x, y)))))".
  std::string ToString() const;

 private:
  PlanNode() = default;

  PlanKind kind_ = PlanKind::kScan;
  Atom atom_;
  PlanPtr left_;
  PlanPtr right_;
  std::vector<std::string> keep_;
  std::vector<std::string> output_vars_;

  friend struct PlanBuilder;
};

/// Intermediate result of plan execution: a relation keyed by variable
/// names with one probability per (distinct) row.
struct PlanRelation {
  std::vector<std::string> vars;
  std::vector<Tuple> rows;
  std::vector<double> probs;
};

/// Executes `plan` against `db`. For a Boolean plan (no output variables)
/// the result has one row with the final probability (or no rows: 0).
Result<PlanRelation> ExecutePlan(const PlanPtr& plan, const Database& db);

/// Executes a Boolean plan and returns the single probability.
Result<double> ExecuteBooleanPlan(const PlanPtr& plan, const Database& db);

}  // namespace pdb

#endif  // PDB_PLANS_PLAN_H_
