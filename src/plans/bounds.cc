#include "plans/bounds.h"

#include <cmath>
#include <map>

#include "boolean/lineage.h"
#include "logic/analysis.h"

namespace pdb {

Result<Database> DissociateForLowerBound(const ConjunctiveQuery& cq,
                                         const Database& db) {
  // Occurrence counts k per (relation, row) across the lineage DNF.
  std::map<std::pair<std::string, size_t>, size_t> counts;
  PDB_RETURN_NOT_OK(EnumerateCqMatches(cq, db, [&](const CqMatch& match) {
    // A tuple matched by several atoms of one term still occurs once in
    // that term; deduplicate within the match.
    std::map<std::pair<std::string, size_t>, bool> seen;
    for (const LineageVar& lv : match.atom_rows) {
      seen[{lv.relation, lv.row}] = true;
    }
    for (const auto& [key, unused] : seen) ++counts[key];
  }));
  Database dissociated = db;
  for (const auto& [key, k] : counts) {
    if (k <= 1) continue;
    PDB_ASSIGN_OR_RETURN(Relation * rel,
                         dissociated.GetMutable(key.first));
    double p = rel->prob(key.second);
    rel->set_prob(key.second,
                  1.0 - std::pow(1.0 - p, 1.0 / static_cast<double>(k)));
  }
  return dissociated;
}

Result<PlanBounds> ComputePlanBounds(const ConjunctiveQuery& cq,
                                     const Database& db, size_t max_vars) {
  PDB_ASSIGN_OR_RETURN(std::vector<PlanPtr> plans,
                       EnumerateAllPlans(cq, max_vars));
  PDB_ASSIGN_OR_RETURN(Database dissociated, DissociateForLowerBound(cq, db));
  PlanBounds bounds;
  bounds.num_plans = plans.size();
  bounds.lower = 0.0;
  bounds.upper = 1.0;
  for (const PlanPtr& plan : plans) {
    PDB_ASSIGN_OR_RETURN(double upper, ExecuteBooleanPlan(plan, db));
    PDB_ASSIGN_OR_RETURN(double lower, ExecuteBooleanPlan(plan, dissociated));
    bounds.upper = std::min(bounds.upper, upper);
    bounds.lower = std::max(bounds.lower, lower);
  }
  if (IsHierarchical(cq)) {
    PDB_ASSIGN_OR_RETURN(PlanPtr safe, BuildSafePlan(cq));
    PDB_ASSIGN_OR_RETURN(double value, ExecuteBooleanPlan(safe, db));
    bounds.safe_value = value;
  }
  return bounds;
}

}  // namespace pdb
