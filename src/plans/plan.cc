#include "plans/plan.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

struct PlanBuilder {
  static std::shared_ptr<PlanNode> Make() {
    return std::shared_ptr<PlanNode>(new PlanNode());
  }
};

PlanPtr PlanNode::Scan(Atom atom) {
  auto node = PlanBuilder::Make();
  node->kind_ = PlanKind::kScan;
  std::set<std::string> vars = atom.Variables();
  node->output_vars_.assign(vars.begin(), vars.end());
  node->atom_ = std::move(atom);
  return node;
}

PlanPtr PlanNode::Join(PlanPtr left, PlanPtr right) {
  auto node = PlanBuilder::Make();
  node->kind_ = PlanKind::kJoin;
  std::set<std::string> vars(left->output_vars().begin(),
                             left->output_vars().end());
  vars.insert(right->output_vars().begin(), right->output_vars().end());
  node->output_vars_.assign(vars.begin(), vars.end());
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return node;
}

PlanPtr PlanNode::Project(PlanPtr child, std::vector<std::string> keep) {
  auto node = PlanBuilder::Make();
  node->kind_ = PlanKind::kProject;
  std::sort(keep.begin(), keep.end());
  keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
  for (const std::string& v : keep) {
    PDB_CHECK(std::find(child->output_vars().begin(),
                        child->output_vars().end(),
                        v) != child->output_vars().end());
  }
  node->output_vars_ = keep;
  node->keep_ = std::move(keep);
  node->left_ = std::move(child);
  return node;
}

std::string PlanNode::ToString() const {
  switch (kind_) {
    case PlanKind::kScan:
      return "Scan(" + atom_.ToString() + ")";
    case PlanKind::kJoin:
      return "Join(" + left_->ToString() + ", " + right_->ToString() + ")";
    case PlanKind::kProject: {
      std::string keep = StrJoin(keep_, ",");
      return "Project{" + keep + "}(" + left_->ToString() + ")";
    }
  }
  return "?";
}

namespace {

Result<PlanRelation> ExecuteScan(const PlanNode& plan, const Database& db) {
  const Atom& atom = plan.atom();
  PDB_ASSIGN_OR_RETURN(const Relation* rel, db.Get(atom.predicate));
  if (rel->arity() != atom.arity()) {
    return Status::InvalidArgument(
        StrFormat("scan of %s: arity mismatch (relation has %zu columns)",
                  atom.ToString().c_str(), rel->arity()));
  }
  PlanRelation out;
  out.vars = plan.output_vars();
  // Position of the first occurrence of each output var in the atom.
  std::vector<size_t> var_pos;
  for (const std::string& v : out.vars) {
    for (size_t j = 0; j < atom.args.size(); ++j) {
      if (atom.args[j].is_variable() && atom.args[j].var() == v) {
        var_pos.push_back(j);
        break;
      }
    }
  }
  for (size_t row = 0; row < rel->size(); ++row) {
    const Tuple& tuple = rel->tuple(row);
    bool match = true;
    // Constants must match; repeated variables must agree.
    std::map<std::string, Value> binding;
    for (size_t j = 0; j < atom.args.size() && match; ++j) {
      const Term& t = atom.args[j];
      if (t.is_constant()) {
        match = tuple[j] == t.constant();
      } else {
        auto [it, inserted] = binding.emplace(t.var(), tuple[j]);
        if (!inserted) match = it->second == tuple[j];
      }
    }
    if (!match) continue;
    Tuple out_row;
    out_row.reserve(var_pos.size());
    for (size_t j : var_pos) out_row.push_back(tuple[j]);
    out.rows.push_back(std::move(out_row));
    out.probs.push_back(rel->prob(row));
  }
  return out;
}

Result<PlanRelation> ExecuteJoin(const PlanRelation& left,
                                 const PlanRelation& right) {
  // Shared variables and their column positions.
  std::vector<std::pair<size_t, size_t>> shared;  // (left col, right col)
  std::vector<size_t> right_extra;                // right columns not shared
  for (size_t j = 0; j < right.vars.size(); ++j) {
    auto it = std::find(left.vars.begin(), left.vars.end(), right.vars[j]);
    if (it != left.vars.end()) {
      shared.emplace_back(it - left.vars.begin(), j);
    } else {
      right_extra.push_back(j);
    }
  }
  PlanRelation out;
  out.vars = left.vars;
  for (size_t j : right_extra) out.vars.push_back(right.vars[j]);
  // Hash the right side on the shared key.
  std::unordered_map<Tuple, std::vector<size_t>> hash;
  for (size_t r = 0; r < right.rows.size(); ++r) {
    Tuple key;
    key.reserve(shared.size());
    for (const auto& [lc, rc] : shared) key.push_back(right.rows[r][rc]);
    hash[std::move(key)].push_back(r);
  }
  for (size_t l = 0; l < left.rows.size(); ++l) {
    Tuple key;
    key.reserve(shared.size());
    for (const auto& [lc, rc] : shared) key.push_back(left.rows[l][lc]);
    auto it = hash.find(key);
    if (it == hash.end()) continue;
    for (size_t r : it->second) {
      Tuple row = left.rows[l];
      for (size_t j : right_extra) row.push_back(right.rows[r][j]);
      out.rows.push_back(std::move(row));
      out.probs.push_back(left.probs[l] * right.probs[r]);
    }
  }
  // The output variable list must be sorted to match PlanNode::output_vars;
  // reorder columns accordingly.
  std::vector<std::string> sorted_vars = out.vars;
  std::sort(sorted_vars.begin(), sorted_vars.end());
  if (sorted_vars != out.vars) {
    std::vector<size_t> perm;
    perm.reserve(sorted_vars.size());
    for (const std::string& v : sorted_vars) {
      perm.push_back(std::find(out.vars.begin(), out.vars.end(), v) -
                     out.vars.begin());
    }
    for (Tuple& row : out.rows) {
      Tuple reordered;
      reordered.reserve(perm.size());
      for (size_t j : perm) reordered.push_back(row[j]);
      row = std::move(reordered);
    }
    out.vars = std::move(sorted_vars);
  }
  return out;
}

PlanRelation ExecuteProject(const PlanRelation& child,
                            const std::vector<std::string>& keep) {
  PlanRelation out;
  out.vars = keep;
  std::vector<size_t> cols;
  cols.reserve(keep.size());
  for (const std::string& v : keep) {
    cols.push_back(std::find(child.vars.begin(), child.vars.end(), v) -
                   child.vars.begin());
  }
  std::unordered_map<Tuple, size_t> groups;
  for (size_t r = 0; r < child.rows.size(); ++r) {
    Tuple key;
    key.reserve(cols.size());
    for (size_t j : cols) key.push_back(child.rows[r][j]);
    auto [it, inserted] = groups.emplace(std::move(key), out.rows.size());
    if (inserted) {
      out.rows.push_back(Tuple());
      out.rows.back().reserve(cols.size());
      for (size_t j : cols) out.rows.back().push_back(child.rows[r][j]);
      out.probs.push_back(child.probs[r]);
    } else {
      double& p = out.probs[it->second];
      p = 1.0 - (1.0 - p) * (1.0 - child.probs[r]);  // u ⊕ v
    }
  }
  return out;
}

}  // namespace

Result<PlanRelation> ExecutePlan(const PlanPtr& plan, const Database& db) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return ExecuteScan(*plan, db);
    case PlanKind::kJoin: {
      PDB_ASSIGN_OR_RETURN(PlanRelation left, ExecutePlan(plan->left(), db));
      PDB_ASSIGN_OR_RETURN(PlanRelation right, ExecutePlan(plan->right(), db));
      return ExecuteJoin(left, right);
    }
    case PlanKind::kProject: {
      PDB_ASSIGN_OR_RETURN(PlanRelation child, ExecutePlan(plan->child(), db));
      return ExecuteProject(child, plan->keep());
    }
  }
  return Status::Internal("unreachable plan kind");
}

Result<double> ExecuteBooleanPlan(const PlanPtr& plan, const Database& db) {
  if (!plan->output_vars().empty()) {
    return Status::InvalidArgument(
        "plan has output variables; wrap it in Project{} for a Boolean "
        "result");
  }
  PDB_ASSIGN_OR_RETURN(PlanRelation result, ExecutePlan(plan, db));
  if (result.rows.empty()) return 0.0;
  PDB_CHECK(result.rows.size() == 1);
  return result.probs[0];
}

}  // namespace pdb
