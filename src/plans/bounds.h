/// \file bounds.h
/// \brief Oblivious upper and lower bounds from query plans (Theorem 6.1).
///
/// Every plan's value upper-bounds p_D(Q); running a plan on the dissociated
/// database — each tuple probability replaced by 1 - (1-p)^{1/k}, k the
/// tuple's occurrence count in the lineage DNF — lower-bounds it:
///
///     Plan_{D1} <= p_D(Q) <= Plan_D.
///
/// `ComputePlanBounds` evaluates all elimination-order plans and returns the
/// tightest pair (min of uppers, max of lowers), plus the safe-plan value
/// when the query is hierarchical.

#ifndef PDB_PLANS_BOUNDS_H_
#define PDB_PLANS_BOUNDS_H_

#include <optional>

#include "plans/enumerate.h"
#include "plans/plan.h"

namespace pdb {

/// The dissociated database D1 for `cq` over `db`: every tuple probability
/// p becomes 1 - (1-p)^{1/k} where k is the number of DNF lineage terms the
/// tuple occurs in (tuples outside the lineage keep their probability).
Result<Database> DissociateForLowerBound(const ConjunctiveQuery& cq,
                                         const Database& db);

/// Result of the bound computation.
struct PlanBounds {
  double lower = 0.0;
  double upper = 1.0;
  size_t num_plans = 0;
  /// Value of the safe plan when one exists (then lower == upper == exact).
  std::optional<double> safe_value;
};

/// Evaluates all plans (bounded enumeration) to produce the tightest
/// oblivious bounds for a self-join-free Boolean CQ.
Result<PlanBounds> ComputePlanBounds(const ConjunctiveQuery& cq,
                                     const Database& db, size_t max_vars = 7);

}  // namespace pdb

#endif  // PDB_PLANS_BOUNDS_H_
