#include "plans/enumerate.h"

#include <algorithm>
#include <set>

#include "logic/analysis.h"
#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

Result<PlanPtr> PlanForEliminationOrder(
    const ConjunctiveQuery& cq, const std::vector<std::string>& order) {
  if (!cq.IsSelfJoinFree()) {
    return Status::Unsupported(
        "plan enumeration is limited to self-join-free queries (paper §6)");
  }
  std::set<std::string> query_vars = cq.Variables();
  if (std::set<std::string>(order.begin(), order.end()) != query_vars) {
    return Status::InvalidArgument(
        "elimination order must be a permutation of the query variables");
  }
  // Working set of operands.
  std::vector<PlanPtr> operands;
  for (const Atom& atom : cq.atoms()) operands.push_back(PlanNode::Scan(atom));
  for (const std::string& x : order) {
    // Join every operand mentioning x (left-deep, in list order).
    std::vector<PlanPtr> with_x;
    std::vector<PlanPtr> rest;
    for (PlanPtr& op : operands) {
      const auto& vars = op->output_vars();
      if (std::find(vars.begin(), vars.end(), x) != vars.end()) {
        with_x.push_back(std::move(op));
      } else {
        rest.push_back(std::move(op));
      }
    }
    PDB_CHECK(!with_x.empty());
    PlanPtr joined = with_x[0];
    for (size_t i = 1; i < with_x.size(); ++i) {
      joined = PlanNode::Join(joined, with_x[i]);
    }
    // Project x away, keeping everything else.
    std::vector<std::string> keep;
    for (const std::string& v : joined->output_vars()) {
      if (v != x) keep.push_back(v);
    }
    rest.push_back(PlanNode::Project(joined, std::move(keep)));
    operands = std::move(rest);
  }
  // All operands are now variable-free; join them (probabilities multiply).
  PlanPtr plan = operands[0];
  for (size_t i = 1; i < operands.size(); ++i) {
    plan = PlanNode::Join(plan, operands[i]);
  }
  return plan;
}

Result<std::vector<PlanPtr>> EnumerateAllPlans(const ConjunctiveQuery& cq,
                                               size_t max_vars) {
  std::set<std::string> var_set = cq.Variables();
  if (var_set.size() > max_vars) {
    return Status::ResourceExhausted(
        StrFormat("enumerating plans over %zu variables exceeds the limit "
                  "of %zu",
                  var_set.size(), max_vars));
  }
  std::vector<std::string> order(var_set.begin(), var_set.end());
  std::vector<PlanPtr> plans;
  std::set<std::string> seen;
  if (order.empty()) {
    PDB_ASSIGN_OR_RETURN(PlanPtr plan, PlanForEliminationOrder(cq, order));
    plans.push_back(std::move(plan));
    return plans;
  }
  std::sort(order.begin(), order.end());
  do {
    PDB_ASSIGN_OR_RETURN(PlanPtr plan, PlanForEliminationOrder(cq, order));
    if (seen.insert(plan->ToString()).second) plans.push_back(std::move(plan));
  } while (std::next_permutation(order.begin(), order.end()));
  return plans;
}

namespace {

// Recursive safe-plan construction: returns a plan whose output variables
// are exactly `output` (a subset of vars(sub-query)).
Result<PlanPtr> SafePlanRec(const std::vector<Atom>& atoms,
                            const std::set<std::string>& output) {
  PDB_CHECK(!atoms.empty());
  // Variables still to be projected away.
  std::set<std::string> remaining;
  for (const Atom& atom : atoms) {
    for (const std::string& v : atom.Variables()) {
      if (output.count(v) == 0) remaining.insert(v);
    }
  }
  if (remaining.empty()) {
    // Pure join (with per-atom projection onto output).
    PlanPtr plan;
    for (const Atom& atom : atoms) {
      PlanPtr scan = PlanNode::Scan(atom);
      plan = plan == nullptr ? scan : PlanNode::Join(plan, scan);
    }
    return plan;
  }
  // Split into components connected via `remaining` variables.
  std::vector<int> component(atoms.size(), -1);
  int num_components = 0;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (component[i] != -1) continue;
    // BFS from atom i over shared remaining-vars.
    std::vector<size_t> queue{i};
    component[i] = num_components;
    while (!queue.empty()) {
      size_t cur = queue.back();
      queue.pop_back();
      std::set<std::string> cur_vars = atoms[cur].Variables();
      for (size_t j = 0; j < atoms.size(); ++j) {
        if (component[j] != -1) continue;
        for (const std::string& v : atoms[j].Variables()) {
          if (remaining.count(v) > 0 && cur_vars.count(v) > 0) {
            component[j] = num_components;
            queue.push_back(j);
            break;
          }
        }
      }
    }
    ++num_components;
  }
  if (num_components > 1) {
    PlanPtr plan;
    for (int c = 0; c < num_components; ++c) {
      std::vector<Atom> sub;
      std::set<std::string> sub_output;
      for (size_t i = 0; i < atoms.size(); ++i) {
        if (component[i] == c) {
          sub.push_back(atoms[i]);
          for (const std::string& v : atoms[i].Variables()) {
            if (output.count(v) > 0) sub_output.insert(v);
          }
        }
      }
      PDB_ASSIGN_OR_RETURN(PlanPtr sub_plan, SafePlanRec(sub, sub_output));
      plan = plan == nullptr ? sub_plan : PlanNode::Join(plan, sub_plan);
    }
    return plan;
  }
  // One component: find root variables (remaining vars present in every
  // atom of the component).
  std::set<std::string> roots = remaining;
  for (const Atom& atom : atoms) {
    std::set<std::string> vars = atom.Variables();
    std::set<std::string> inter;
    std::set_intersection(roots.begin(), roots.end(), vars.begin(),
                          vars.end(), std::inserter(inter, inter.begin()));
    roots = std::move(inter);
    if (roots.empty()) break;
  }
  if (roots.empty()) {
    return Status::Unsupported(
        "query is not hierarchical: no safe plan exists (Theorem 4.3)");
  }
  std::set<std::string> inner_output = output;
  inner_output.insert(roots.begin(), roots.end());
  PDB_ASSIGN_OR_RETURN(PlanPtr inner, SafePlanRec(atoms, inner_output));
  return PlanNode::Project(
      inner, std::vector<std::string>(output.begin(), output.end()));
}

}  // namespace

Result<PlanPtr> BuildSafePlan(const ConjunctiveQuery& cq) {
  if (!cq.IsSelfJoinFree()) {
    return Status::Unsupported(
        "safe plans are defined here for self-join-free queries");
  }
  if (cq.empty()) {
    return Status::InvalidArgument("cannot build a plan for the empty query");
  }
  return SafePlanRec(cq.atoms(), {});
}

}  // namespace pdb
