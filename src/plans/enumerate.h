/// \file enumerate.h
/// \brief Plan enumeration and safe-plan construction for self-join-free
/// Boolean CQs (paper §6).
///
/// Each variable elimination order yields one plan: scan every atom, and for
/// each variable in order, join the operands containing it and ⊕-project it
/// away. The paper's Plan_1/Plan_2 example corresponds to the two orders of
/// {x, y} for R(x), S(x,y). The safe plan (when the query is hierarchical)
/// is built directly from the hierarchical decomposition.

#ifndef PDB_PLANS_ENUMERATE_H_
#define PDB_PLANS_ENUMERATE_H_

#include <vector>

#include "plans/plan.h"

namespace pdb {

/// Builds the plan induced by eliminating variables in `order` (must be a
/// permutation of the query's variables). The query must be self-join-free.
Result<PlanPtr> PlanForEliminationOrder(const ConjunctiveQuery& cq,
                                        const std::vector<std::string>& order);

/// All plans over all variable elimination orders (deduplicated by
/// structure). Fails if the query has more than `max_vars` variables.
Result<std::vector<PlanPtr>> EnumerateAllPlans(const ConjunctiveQuery& cq,
                                               size_t max_vars = 7);

/// The safe plan of a hierarchical self-join-free CQ (Dalvi–Suciu);
/// Unsupported when the query is not hierarchical (then no safe plan
/// exists, Theorem 4.3).
Result<PlanPtr> BuildSafePlan(const ConjunctiveQuery& cq);

}  // namespace pdb

#endif  // PDB_PLANS_ENUMERATE_H_
