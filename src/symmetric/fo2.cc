#include "symmetric/fo2.h"

#include <algorithm>
#include <functional>

#include "util/check.h"
#include "util/scaled_float.h"
#include "util/string_util.h"

namespace pdb {

namespace {

bool IsQuantifierFree(const FoPtr& f) {
  if (f->kind() == FoKind::kExists || f->kind() == FoKind::kForall) {
    return false;
  }
  for (const FoPtr& c : f->children()) {
    if (!IsQuantifierFree(c)) return false;
  }
  return true;
}

Result<Fo2Clause> ParseClause(const FoPtr& clause) {
  if (clause->kind() != FoKind::kForall) {
    return Status::Unsupported(
        StrFormat("FO2 shape expects forall-rooted clauses, got: %s",
                  clause->ToString().c_str()));
  }
  const std::string outer = clause->quantified_var();
  FoPtr body = clause->children()[0];
  Fo2Clause out;
  FoPtr matrix;
  std::string inner;
  if (body->kind() == FoKind::kForall) {
    out.shape = Fo2Clause::Shape::kForallForall;
    inner = body->quantified_var();
    matrix = body->children()[0];
  } else if (body->kind() == FoKind::kExists) {
    out.shape = Fo2Clause::Shape::kForallExists;
    inner = body->quantified_var();
    matrix = body->children()[0];
  } else {
    // Single-variable clause ∀x φ(x) == ∀x∀y φ(x) over a nonempty domain.
    out.shape = Fo2Clause::Shape::kForallForall;
    inner = "";
    matrix = body;
  }
  if (!IsQuantifierFree(matrix)) {
    return Status::Unsupported(
        "FO2 shape requires a quantifier-free matrix per clause");
  }
  // Normalize variable names to "x"/"y" (inner first: it shadows the outer
  // binder when the names collide).
  if (!inner.empty()) matrix = RenameVariable(matrix, inner, "__fo2_y");
  matrix = RenameVariable(matrix, outer, "__fo2_x");
  matrix = RenameVariable(matrix, "__fo2_x", "x");
  matrix = RenameVariable(matrix, "__fo2_y", "y");
  for (const std::string& v : matrix->FreeVariables()) {
    if (v != "x" && v != "y") {
      return Status::InvalidArgument(
          StrFormat("clause matrix has unbound variable '%s'", v.c_str()));
    }
  }
  out.matrix = matrix;
  return out;
}

}  // namespace

Result<Fo2Sentence> ParseFo2Shape(const FoPtr& sentence) {
  Fo2Sentence out;
  FoPtr nnf = ToNnf(sentence);
  std::vector<FoPtr> conjuncts;
  if (nnf->kind() == FoKind::kAnd) {
    conjuncts = nnf->children();
  } else if (nnf->kind() == FoKind::kTrue) {
    return out;
  } else {
    conjuncts.push_back(nnf);
  }
  for (const FoPtr& clause : conjuncts) {
    PDB_ASSIGN_OR_RETURN(Fo2Clause parsed, ParseClause(clause));
    out.clauses.push_back(std::move(parsed));
  }
  return out;
}

namespace {

// Atom access patterns within a two-variable matrix.
enum class Pattern { kUx, kUy, kXx, kXy, kYx, kYy };

Result<Pattern> PatternOf(const Atom& atom) {
  for (const Term& t : atom.args) {
    if (!t.is_variable()) {
      return Status::Unsupported(
          "FO2 symmetric counting does not support constants in atoms");
    }
  }
  if (atom.arity() == 1) {
    const std::string& v = atom.args[0].var();
    if (v == "x") return Pattern::kUx;
    if (v == "y") return Pattern::kUy;
  } else if (atom.arity() == 2) {
    const std::string& a = atom.args[0].var();
    const std::string& b = atom.args[1].var();
    if (a == "x" && b == "x") return Pattern::kXx;
    if (a == "x" && b == "y") return Pattern::kXy;
    if (a == "y" && b == "x") return Pattern::kYx;
    if (a == "y" && b == "y") return Pattern::kYy;
  }
  return Status::Unsupported(
      StrFormat("atom %s is not a one/two-variable x/y atom",
                atom.ToString().c_str()));
}

// Truth values of every slot for one evaluation context.
struct SlotAssign {
  // Indexed by unary / binary predicate index.
  std::vector<char> ux, uy;
  std::vector<char> xx, xy, yx, yy;
};

// Evaluates a quantifier-free matrix under a slot assignment.
Result<bool> EvalMatrix(const FoPtr& f, const SlotAssign& a,
                        const std::map<std::string, size_t>& unary_index,
                        const std::map<std::string, size_t>& binary_index) {
  switch (f->kind()) {
    case FoKind::kTrue:
      return true;
    case FoKind::kFalse:
      return false;
    case FoKind::kAtom: {
      PDB_ASSIGN_OR_RETURN(Pattern p, PatternOf(f->atom()));
      const std::string& pred = f->atom().predicate;
      if (p == Pattern::kUx || p == Pattern::kUy) {
        auto it = unary_index.find(pred);
        if (it == unary_index.end()) {
          return Status::InvalidArgument(
              StrFormat("predicate '%s' used as unary but not declared so",
                        pred.c_str()));
        }
        return static_cast<bool>(p == Pattern::kUx ? a.ux[it->second]
                                                   : a.uy[it->second]);
      }
      auto it = binary_index.find(pred);
      if (it == binary_index.end()) {
        return Status::InvalidArgument(
            StrFormat("predicate '%s' used as binary but not declared so",
                      pred.c_str()));
      }
      switch (p) {
        case Pattern::kXx:
          return static_cast<bool>(a.xx[it->second]);
        case Pattern::kXy:
          return static_cast<bool>(a.xy[it->second]);
        case Pattern::kYx:
          return static_cast<bool>(a.yx[it->second]);
        case Pattern::kYy:
          return static_cast<bool>(a.yy[it->second]);
        default:
          break;
      }
      return Status::Internal("unreachable pattern");
    }
    case FoKind::kNot: {
      PDB_ASSIGN_OR_RETURN(
          bool inner, EvalMatrix(f->children()[0], a, unary_index,
                                 binary_index));
      return !inner;
    }
    case FoKind::kAnd:
      for (const FoPtr& c : f->children()) {
        PDB_ASSIGN_OR_RETURN(bool v,
                             EvalMatrix(c, a, unary_index, binary_index));
        if (!v) return false;
      }
      return true;
    case FoKind::kOr:
      for (const FoPtr& c : f->children()) {
        PDB_ASSIGN_OR_RETURN(bool v,
                             EvalMatrix(c, a, unary_index, binary_index));
        if (v) return true;
      }
      return false;
    default:
      return Status::Internal("quantifier in FO2 matrix evaluation");
  }
}

// Does any matrix mention a reflexive binary atom (B(x,x) or B(y,y))?
bool MentionsReflexive(const FoPtr& f) {
  if (f->kind() == FoKind::kAtom) {
    const Atom& atom = f->atom();
    if (atom.arity() == 2 && atom.args[0].is_variable() &&
        atom.args[1].is_variable() &&
        atom.args[0].var() == atom.args[1].var()) {
      return true;
    }
    return false;
  }
  for (const FoPtr& c : f->children()) {
    if (MentionsReflexive(c)) return true;
  }
  return false;
}

template <typename Num>
struct NumTraits;

template <>
struct NumTraits<BigRational> {
  static BigRational One() { return BigRational(1); }
  static BigRational FromBigInt(const BigInt& v) { return BigRational(v); }
  static BigRational FromSize(size_t v) {
    return BigRational(static_cast<int64_t>(v));
  }
  static bool IsZero(const BigRational& v) { return v.is_zero(); }
  static BigRational FromRational(const BigRational& v) { return v; }
};

template <>
struct NumTraits<ScaledFloat> {
  static ScaledFloat One() { return ScaledFloat(1.0); }
  static ScaledFloat FromBigInt(const BigInt& v) {
    return ScaledFloat::FromBigInt(v);
  }
  static ScaledFloat FromSize(size_t v) {
    return ScaledFloat(static_cast<double>(v));
  }
  static bool IsZero(const ScaledFloat& v) { return v.is_zero(); }
  static ScaledFloat FromRational(const BigRational& v) {
    return ScaledFloat(v.ToDouble());
  }
};

// The cell-decomposition count of a conjunction of ∀x∀y matrices.
template <typename Num>
Result<Num> CellWfomc(
    const std::vector<FoPtr>& matrices,
    const std::vector<std::string>& unary,
    const std::vector<std::string>& binary,
    const std::map<std::string, std::pair<Num, Num>>& weights, size_t n,
    size_t max_terms) {
  using T = NumTraits<Num>;
  std::map<std::string, size_t> unary_index;
  for (size_t i = 0; i < unary.size(); ++i) unary_index[unary[i]] = i;
  std::map<std::string, size_t> binary_index;
  for (size_t i = 0; i < binary.size(); ++i) binary_index[binary[i]] = i;

  bool reflexive_in_cells = false;
  for (const FoPtr& m : matrices) {
    if (MentionsReflexive(m)) reflexive_in_cells = true;
  }
  const size_t num_unary = unary.size();
  const size_t num_binary = binary.size();
  const size_t cell_bits =
      num_unary + (reflexive_in_cells ? num_binary : 0);
  if (cell_bits > 16 || 2 * num_binary > 16) {
    return Status::ResourceExhausted(
        "too many predicates for FO2 cell decomposition");
  }

  auto weight_of = [&](const std::string& pred, bool value) -> const Num& {
    auto it = weights.find(pred);
    PDB_CHECK(it != weights.end());
    return value ? it->second.first : it->second.second;
  };

  // --- Enumerate valid cells. ---
  struct Cell {
    std::vector<char> unary_vals;
    std::vector<char> reflexive_vals;  // only when reflexive_in_cells
    Num weight;
  };
  std::vector<Cell> cells;
  for (size_t mask = 0; mask < (size_t{1} << cell_bits); ++mask) {
    Cell cell;
    cell.unary_vals.resize(num_unary);
    for (size_t i = 0; i < num_unary; ++i) {
      cell.unary_vals[i] = static_cast<char>((mask >> i) & 1);
    }
    if (reflexive_in_cells) {
      cell.reflexive_vals.resize(num_binary);
      for (size_t i = 0; i < num_binary; ++i) {
        cell.reflexive_vals[i] =
            static_cast<char>((mask >> (num_unary + i)) & 1);
      }
    }
    Num unary_weight = T::One();
    for (size_t i = 0; i < num_unary; ++i) {
      unary_weight = unary_weight * weight_of(unary[i], cell.unary_vals[i]);
    }
    // Validity and the reflexive-atom mass: ψ(x,x) must hold.
    SlotAssign assign;
    assign.ux = cell.unary_vals;
    assign.uy = cell.unary_vals;
    Num reflexive_mass;
    bool any = false;
    if (reflexive_in_cells) {
      assign.xx = cell.reflexive_vals;
      assign.xy = cell.reflexive_vals;
      assign.yx = cell.reflexive_vals;
      assign.yy = cell.reflexive_vals;
      bool ok = true;
      for (const FoPtr& m : matrices) {
        PDB_ASSIGN_OR_RETURN(bool v,
                             EvalMatrix(m, assign, unary_index, binary_index));
        if (!v) {
          ok = false;
          break;
        }
      }
      if (ok) {
        any = true;
        reflexive_mass = T::One();
        for (size_t i = 0; i < num_binary; ++i) {
          reflexive_mass =
              reflexive_mass * weight_of(binary[i], cell.reflexive_vals[i]);
        }
      }
    } else {
      // Sum the reflexive atoms out of ψ(x,x).
      reflexive_mass = Num();
      for (size_t rmask = 0; rmask < (size_t{1} << num_binary); ++rmask) {
        std::vector<char> rvals(num_binary);
        for (size_t i = 0; i < num_binary; ++i) {
          rvals[i] = static_cast<char>((rmask >> i) & 1);
        }
        assign.xx = rvals;
        assign.xy = rvals;
        assign.yx = rvals;
        assign.yy = rvals;
        bool ok = true;
        for (const FoPtr& m : matrices) {
          PDB_ASSIGN_OR_RETURN(
              bool v, EvalMatrix(m, assign, unary_index, binary_index));
          if (!v) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        Num w = T::One();
        for (size_t i = 0; i < num_binary; ++i) {
          w = w * weight_of(binary[i], rvals[i]);
        }
        reflexive_mass = reflexive_mass + w;
        any = true;
      }
    }
    if (!any) continue;
    cell.weight = unary_weight * reflexive_mass;
    if (T::IsZero(cell.weight)) continue;
    cells.push_back(std::move(cell));
  }
  const size_t num_cells = cells.size();
  if (num_cells == 0) return Num();  // no element type is consistent

  // --- Pairwise masses r_ij. ---
  std::vector<std::vector<Num>> r(num_cells, std::vector<Num>(num_cells));
  for (size_t i = 0; i < num_cells; ++i) {
    for (size_t j = i; j < num_cells; ++j) {
      Num mass;
      for (size_t cmask = 0; cmask < (size_t{1} << (2 * num_binary));
           ++cmask) {
        std::vector<char> xy(num_binary), yx(num_binary);
        for (size_t b = 0; b < num_binary; ++b) {
          xy[b] = static_cast<char>((cmask >> (2 * b)) & 1);
          yx[b] = static_cast<char>((cmask >> (2 * b + 1)) & 1);
        }
        // ψ(x,y): x typed by cell i, y by cell j.
        SlotAssign fwd;
        fwd.ux = cells[i].unary_vals;
        fwd.uy = cells[j].unary_vals;
        fwd.xx = reflexive_in_cells ? cells[i].reflexive_vals
                                    : std::vector<char>(num_binary, 0);
        fwd.yy = reflexive_in_cells ? cells[j].reflexive_vals
                                    : std::vector<char>(num_binary, 0);
        fwd.xy = xy;
        fwd.yx = yx;
        bool ok = true;
        for (const FoPtr& m : matrices) {
          PDB_ASSIGN_OR_RETURN(bool v,
                               EvalMatrix(m, fwd, unary_index, binary_index));
          if (!v) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        // ψ(y,x): roles swapped.
        SlotAssign bwd;
        bwd.ux = cells[j].unary_vals;
        bwd.uy = cells[i].unary_vals;
        bwd.xx = fwd.yy;
        bwd.yy = fwd.xx;
        bwd.xy = yx;
        bwd.yx = xy;
        for (const FoPtr& m : matrices) {
          PDB_ASSIGN_OR_RETURN(bool v,
                               EvalMatrix(m, bwd, unary_index, binary_index));
          if (!v) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        Num w = T::One();
        for (size_t b = 0; b < num_binary; ++b) {
          w = w * weight_of(binary[b], xy[b]);
          w = w * weight_of(binary[b], yx[b]);
        }
        mass = mass + w;
      }
      r[i][j] = mass;
      r[j][i] = mass;
    }
  }

  // --- Guard the number of cell-count vectors. ---
  BigInt num_vectors = BigInt::Binomial(n + num_cells - 1, num_cells - 1);
  if (num_vectors > BigInt(static_cast<int64_t>(max_terms))) {
    return Status::ResourceExhausted(StrFormat(
        "FO2 counting needs %s cell-count vectors (limit %zu)",
        num_vectors.ToString().c_str(), max_terms));
  }

  // --- Sum over compositions of n into num_cells parts. ---
  // Power tables: pow_cell[i][c] = w_i^c (c <= n); pow_pair[i][j][e] =
  // r_ij^e (e up to the largest needed exponent). Avoids repeated Pow calls
  // and any big-integer factorial arithmetic in the inner loop.
  std::vector<std::vector<Num>> pow_cell(num_cells);
  for (size_t i = 0; i < num_cells; ++i) {
    pow_cell[i].resize(n + 1);
    pow_cell[i][0] = T::One();
    for (size_t c = 1; c <= n; ++c) {
      pow_cell[i][c] = pow_cell[i][c - 1] * cells[i].weight;
    }
  }
  const size_t max_pair_exp = n * n;
  std::vector<std::vector<std::vector<Num>>> pow_pair(
      num_cells, std::vector<std::vector<Num>>(num_cells));
  for (size_t i = 0; i < num_cells; ++i) {
    for (size_t j = i; j < num_cells; ++j) {
      std::vector<Num>& powers = pow_pair[i][j];
      powers.resize(max_pair_exp + 1);
      powers[0] = T::One();
      for (size_t e = 1; e <= max_pair_exp; ++e) {
        powers[e] = powers[e - 1] * r[i][j];
      }
    }
  }
  // The multinomial n!/(n_1!..n_C!) equals prod_i C(remaining_i, n_i) with
  // remaining_1 = n and remaining_{i+1} = remaining_i - n_i; the binomials
  // are maintained incrementally in Num arithmetic.
  Num total;
  std::vector<size_t> counts(num_cells, 0);
  std::function<void(size_t, size_t, Num)> recurse =
      [&](size_t idx, size_t remaining, Num prefix) {
        // `prefix` includes the binomials, cell weights, within-cell pair
        // masses, and cross masses against cells < idx.
        if (idx + 1 == num_cells) {
          size_t c = remaining;
          counts[idx] = c;
          Num term = prefix * pow_cell[idx][c] *
                     pow_pair[idx][idx][c * (c - 1) / 2];
          for (size_t j = 0; j < idx; ++j) {
            term = term * pow_pair[j][idx][counts[j] * c];
          }
          total = total + term;
          return;
        }
        Num binom = T::One();  // C(remaining, 0)
        for (size_t c = 0; c <= remaining; ++c) {
          counts[idx] = c;
          Num factor = prefix * binom * pow_cell[idx][c] *
                       pow_pair[idx][idx][c * (c - 1) / 2];
          for (size_t j = 0; j < idx; ++j) {
            factor = factor * pow_pair[j][idx][counts[j] * c];
          }
          recurse(idx + 1, remaining - c, std::move(factor));
          if (c < remaining) {
            // C(remaining, c+1) = C(remaining, c) * (remaining-c) / (c+1).
            binom = binom * T::FromSize(remaining - c) / T::FromSize(c + 1);
          }
        }
      };
  recurse(0, n, T::One());
  return total;
}

// Skolemizes the sentence and gathers the ∀∀ matrices and the extended
// weight/arity maps. Num-typed weights derive from the rational input.
template <typename Num>
Result<Num> RunWfomc(const Fo2Sentence& sentence, const Fo2Weights& weights,
                     size_t n, size_t max_terms) {
  using T = NumTraits<Num>;
  if (n == 0) {
    return Status::InvalidArgument("domain size must be positive");
  }
  std::map<std::string, std::pair<Num, Num>> w;
  std::map<std::string, size_t> arities = weights.arities;
  for (const auto& [pred, pair] : weights.weights) {
    w.emplace(pred, std::make_pair(T::FromRational(pair.first),
                                   T::FromRational(pair.second)));
  }
  std::vector<FoPtr> matrices;
  int skolem_counter = 0;
  for (const Fo2Clause& clause : sentence.clauses) {
    if (clause.shape == Fo2Clause::Shape::kForallForall) {
      matrices.push_back(clause.matrix);
    } else {
      // Skolemization (Van den Broeck et al.): ∀x∃y φ becomes
      // ∀x∀y (¬φ ∨ A(x)) with w(A) = 1, w̄(A) = -1.
      std::string name = StrFormat("__skolem%d", skolem_counter++);
      arities[name] = 1;
      w.emplace(name,
                std::make_pair(T::FromRational(BigRational(1)),
                               T::FromRational(BigRational(-1))));
      FoPtr skolem_atom =
          Fo::MakeAtom(Atom(name, {Term::Var("x")}));
      matrices.push_back(Fo::Or(Fo::Not(clause.matrix), skolem_atom));
    }
  }
  // Partition predicates by arity; verify every used predicate is known.
  std::vector<std::string> unary, binary;
  for (const auto& [pred, arity] : arities) {
    if (arity == 1) {
      unary.push_back(pred);
    } else if (arity == 2) {
      binary.push_back(pred);
    } else {
      return Status::Unsupported(
          StrFormat("FO2 counting supports arities 1 and 2; '%s' has %zu",
                    pred.c_str(), arity));
    }
    if (w.find(pred) == w.end()) {
      return Status::InvalidArgument(
          StrFormat("no weights for predicate '%s'", pred.c_str()));
    }
  }
  for (const FoPtr& m : matrices) {
    for (const std::string& pred : m->Predicates()) {
      if (arities.find(pred) == arities.end()) {
        return Status::NotFound(
            StrFormat("predicate '%s' has no declared arity", pred.c_str()));
      }
    }
  }
  return CellWfomc<Num>(matrices, unary, binary, w, n, max_terms);
}

}  // namespace

Result<BigRational> SymmetricWfomcExact(const Fo2Sentence& sentence,
                                        const Fo2Weights& weights, size_t n,
                                        size_t max_terms) {
  return RunWfomc<BigRational>(sentence, weights, n, max_terms);
}

Result<double> SymmetricWfomcApprox(const Fo2Sentence& sentence,
                                    const Fo2Weights& weights, size_t n,
                                    size_t max_terms) {
  PDB_ASSIGN_OR_RETURN(ScaledFloat value, RunWfomc<ScaledFloat>(
                                              sentence, weights, n, max_terms));
  return value.ToDouble();
}

namespace {

Result<Fo2Weights> WeightsFromSymmetricDb(const SymmetricDatabase& db) {
  Fo2Weights out;
  for (const SymmetricRelation& rel : db.relations()) {
    BigRational p = BigRational::FromDouble(rel.prob);
    out.weights.emplace(rel.name, std::make_pair(p, BigRational(1) - p));
    out.arities.emplace(rel.name, rel.arity);
  }
  return out;
}

}  // namespace

Result<BigRational> SymmetricPqe(const FoPtr& sentence,
                                 const SymmetricDatabase& db,
                                 size_t max_terms) {
  PDB_ASSIGN_OR_RETURN(Fo2Weights weights, WeightsFromSymmetricDb(db));
  auto direct = ParseFo2Shape(sentence);
  if (direct.ok()) {
    return SymmetricWfomcExact(*direct, weights, db.domain_size(), max_terms);
  }
  // ∃-rooted sentences: P(Q) = 1 - P(¬Q).
  auto complemented = ParseFo2Shape(Fo::Not(sentence));
  if (complemented.ok()) {
    PDB_ASSIGN_OR_RETURN(
        BigRational p, SymmetricWfomcExact(*complemented, weights,
                                           db.domain_size(), max_terms));
    return BigRational(1) - p;
  }
  return direct.status();
}

Result<double> SymmetricPqeApprox(const FoPtr& sentence,
                                  const SymmetricDatabase& db,
                                  size_t max_terms) {
  PDB_ASSIGN_OR_RETURN(Fo2Weights weights, WeightsFromSymmetricDb(db));
  auto direct = ParseFo2Shape(sentence);
  if (direct.ok()) {
    return SymmetricWfomcApprox(*direct, weights, db.domain_size(),
                                max_terms);
  }
  auto complemented = ParseFo2Shape(Fo::Not(sentence));
  if (complemented.ok()) {
    PDB_ASSIGN_OR_RETURN(
        double p, SymmetricWfomcApprox(*complemented, weights,
                                       db.domain_size(), max_terms));
    return 1.0 - p;
  }
  return direct.status();
}

}  // namespace pdb
