/// \file fo2.h
/// \brief Lifted counting for FO² over symmetric databases (Theorem 8.1).
///
/// Implements the Van den Broeck et al. pipeline that makes PQE(Q)
/// polynomial in the domain size for every FO² sentence:
///
///   1. the sentence is brought to a conjunction of ∀x∀y φ and ∀x∃y φ
///      clauses (a Scott-style shape; `ParseFo2Shape` recognizes it, and
///      `SymmetricPqe` additionally handles ∃-rooted sentences through
///      their complement);
///   2. every ∀x∃y clause is skolemized with a fresh unary predicate of
///      weights (1, -1) — negative weights cancel exactly the worlds that
///      violate the existential;
///   3. the resulting single ∀x∀y sentence is counted by cell
///      decomposition: elements are typed by their unary (and, when the
///      matrix mentions reflexive atoms, their B(x,x)) assignments; the
///      count is a sum over cell-count vectors (n_1..n_C), polynomial in n
///      for a fixed sentence.

#ifndef PDB_SYMMETRIC_FO2_H_
#define PDB_SYMMETRIC_FO2_H_

#include <map>
#include <string>
#include <vector>

#include "logic/fo.h"
#include "symmetric/symmetric.h"
#include "util/rational.h"
#include "util/status.h"

namespace pdb {

/// One clause of the recognized FO² shape; the matrix is quantifier-free
/// over variables named exactly "x" and "y".
struct Fo2Clause {
  enum class Shape {
    kForallForall,  ///< ∀x∀y matrix
    kForallExists,  ///< ∀x∃y matrix
  };
  Shape shape = Shape::kForallForall;
  FoPtr matrix;
};

/// A sentence in FO² normal shape: the conjunction of its clauses.
struct Fo2Sentence {
  std::vector<Fo2Clause> clauses;
};

/// Recognizes conjunctions of ∀x∀y φ / ∀x∃y φ / ∀x φ(x) clauses and
/// normalizes quantified variables to "x"/"y". Unsupported shapes are
/// rejected (callers may complement ∃-rooted sentences first).
Result<Fo2Sentence> ParseFo2Shape(const FoPtr& sentence);

/// Weighted pair per predicate (exact).
struct Fo2Weights {
  std::map<std::string, std::pair<BigRational, BigRational>> weights;
  std::map<std::string, size_t> arities;
};

/// Exact symmetric WFOMC of the sentence over domain size n.
/// With probability weights (p, 1-p) the result is the query probability.
/// `max_terms` caps the number of cell-count vectors.
Result<BigRational> SymmetricWfomcExact(const Fo2Sentence& sentence,
                                        const Fo2Weights& weights, size_t n,
                                        size_t max_terms = 2000000);

/// Same algorithm in scaled floating point (large n).
Result<double> SymmetricWfomcApprox(const Fo2Sentence& sentence,
                                    const Fo2Weights& weights, size_t n,
                                    size_t max_terms = 2000000);

/// PQE over a symmetric database for an FO² sentence: handles ∀-rooted
/// shapes directly and ∃-rooted ones via 1 - P(¬Q). Returns the exact
/// probability as a rational.
Result<BigRational> SymmetricPqe(const FoPtr& sentence,
                                 const SymmetricDatabase& db,
                                 size_t max_terms = 2000000);

/// Double-precision variant for large domains.
Result<double> SymmetricPqeApprox(const FoPtr& sentence,
                                  const SymmetricDatabase& db,
                                  size_t max_terms = 2000000);

}  // namespace pdb

#endif  // PDB_SYMMETRIC_FO2_H_
