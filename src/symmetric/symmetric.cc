#include "symmetric/symmetric.h"

#include "util/check.h"
#include "util/scaled_float.h"
#include "util/string_util.h"

namespace pdb {

Result<const SymmetricRelation*> SymmetricDatabase::Find(
    const std::string& name) const {
  for (const SymmetricRelation& rel : relations_) {
    if (rel.name == name) return &rel;
  }
  return Status::NotFound(
      StrFormat("no symmetric relation named '%s'", name.c_str()));
}

std::vector<Value> SymmetricDatabase::Domain() const {
  std::vector<Value> domain;
  domain.reserve(domain_size_);
  for (size_t i = 1; i <= domain_size_; ++i) {
    domain.push_back(Value(static_cast<int64_t>(i)));
  }
  return domain;
}

Result<Database> SymmetricDatabase::Materialize(size_t max_tuples) const {
  Database db;
  size_t total_tuples = 0;
  for (const SymmetricRelation& rel : relations_) {
    size_t count = 1;
    for (size_t i = 0; i < rel.arity; ++i) count *= domain_size_;
    total_tuples += count;
    if (total_tuples > max_tuples) {
      return Status::ResourceExhausted(
          StrFormat("materializing the symmetric database needs %zu tuples "
                    "(limit %zu)",
                    total_tuples, max_tuples));
    }
    Relation stored(rel.name, Schema::Anonymous(rel.arity, ValueType::kInt));
    for (size_t combo = 0; combo < count; ++combo) {
      Tuple tuple;
      size_t rest = combo;
      for (size_t i = 0; i < rel.arity; ++i) {
        tuple.push_back(Value(static_cast<int64_t>(rest % domain_size_ + 1)));
        rest /= domain_size_;
      }
      PDB_RETURN_NOT_OK(stored.AddTuple(std::move(tuple), rel.prob));
    }
    PDB_RETURN_NOT_OK(db.AddRelation(std::move(stored)));
  }
  return db;
}

BigRational H0SymmetricClosedForm(double p_r, double p_s, double p_t,
                                  size_t n) {
  const BigRational pr = BigRational::FromDouble(p_r);
  const BigRational ps = BigRational::FromDouble(p_s);
  const BigRational pt = BigRational::FromDouble(p_t);
  const BigRational one(1);
  BigRational total;
  for (size_t k = 0; k <= n; ++k) {
    BigRational r_part = BigRational(BigInt::Binomial(n, k)) * pr.Pow(k) *
                         (one - pr).Pow(n - k);
    for (size_t l = 0; l <= n; ++l) {
      BigRational t_part = BigRational(BigInt::Binomial(n, l)) * pt.Pow(l) *
                           (one - pt).Pow(n - l);
      BigRational s_part = ps.Pow((n - k) * (n - l));
      total += r_part * t_part * s_part;
    }
  }
  return total;
}

double H0SymmetricClosedFormApprox(double p_r, double p_s, double p_t,
                                   size_t n) {
  const ScaledFloat pr(p_r);
  const ScaledFloat ps(p_s);
  const ScaledFloat pt(p_t);
  const ScaledFloat one(1.0);
  ScaledFloat total;
  for (size_t k = 0; k <= n; ++k) {
    ScaledFloat r_part = ScaledFloat::FromBigInt(BigInt::Binomial(n, k)) *
                         pr.Pow(k) * (one - pr).Pow(n - k);
    for (size_t l = 0; l <= n; ++l) {
      ScaledFloat t_part = ScaledFloat::FromBigInt(BigInt::Binomial(n, l)) *
                           pt.Pow(l) * (one - pt).Pow(n - l);
      ScaledFloat s_part = ps.Pow((n - k) * (n - l));
      total += r_part * t_part * s_part;
    }
  }
  return total.ToDouble();
}

}  // namespace pdb
