/// \file symmetric.h
/// \brief Symmetric probabilistic databases (paper §8).
///
/// A symmetric database assigns every possible tuple of a relation the same
/// probability p_R; the instance is fully described by the vocabulary, the
/// per-relation probabilities, and the domain size n. This module provides
/// the representation, materialization to an ordinary TID (for brute-force
/// cross-checks), and the paper's closed form for p_D(H0).

#ifndef PDB_SYMMETRIC_SYMMETRIC_H_
#define PDB_SYMMETRIC_SYMMETRIC_H_

#include <string>
#include <vector>

#include "storage/database.h"
#include "util/rational.h"
#include "util/status.h"

namespace pdb {

/// One relation of a symmetric database.
struct SymmetricRelation {
  std::string name;
  size_t arity = 1;
  double prob = 0.5;
};

/// A symmetric probabilistic database: vocabulary + domain size.
class SymmetricDatabase {
 public:
  SymmetricDatabase(std::vector<SymmetricRelation> relations,
                    size_t domain_size)
      : relations_(std::move(relations)), domain_size_(domain_size) {}

  const std::vector<SymmetricRelation>& relations() const {
    return relations_;
  }
  size_t domain_size() const { return domain_size_; }

  /// Finds a relation's declaration.
  Result<const SymmetricRelation*> Find(const std::string& name) const;

  /// Materializes the full TID over the integer domain 1..n (every
  /// possible tuple present with its relation's probability). Guarded by
  /// `max_tuples`.
  Result<Database> Materialize(size_t max_tuples = 2000000) const;

  /// The integer domain 1..n as values.
  std::vector<Value> Domain() const;

 private:
  std::vector<SymmetricRelation> relations_;
  size_t domain_size_;
};

/// Exact closed form for p_D(H0), H0 = forall x forall y
/// (R(x) | S(x,y) | T(y)), over a symmetric database (paper §8):
///
///   sum_{k,l} C(n,k) C(n,l) pR^k (1-pR)^(n-k) pT^l (1-pT)^(n-l)
///             pS^((n-k)(n-l))
///
/// Erratum note: the paper prints the final exponent as n^2 - k*l, but a
/// pair (i,j) needs S(i,j) only when i is NOT in R and j is NOT in T, i.e.
/// for (n-k)(n-l) pairs. The printed exponent disagrees with brute-force
/// enumeration already at n = 1 (0.625 vs the true 0.875 at p = 1/2); the
/// corrected exponent matches enumeration and the FO2 cell algorithm for
/// all tested instances (see symmetric_test.cc and EXPERIMENTS.md).
///
/// Probabilities are taken as exact dyadic rationals of the given doubles.
BigRational H0SymmetricClosedForm(double p_r, double p_s, double p_t,
                                  size_t n);

/// Same closed form in scaled floating point (usable for very large n).
double H0SymmetricClosedFormApprox(double p_r, double p_s, double p_t,
                                   size_t n);

}  // namespace pdb

#endif  // PDB_SYMMETRIC_SYMMETRIC_H_
