#include "core/pdb.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>

#include "boolean/lineage.h"
#include "core/session.h"
#include "logic/analysis.h"
#include "plans/bounds.h"
#include "sql/sql.h"
#include "util/string_util.h"
#include "wmc/dpll.h"
#include "wmc/montecarlo.h"

namespace pdb {

const char* InferenceMethodToString(InferenceMethod method) {
  switch (method) {
    case InferenceMethod::kLifted:
      return "lifted";
    case InferenceMethod::kGroundedExact:
      return "grounded-exact";
    case InferenceMethod::kMonteCarlo:
      return "monte-carlo";
    case InferenceMethod::kPlanBounds:
      return "plan-bounds";
  }
  return "?";
}

Result<FoPtr> ParseBooleanQuery(const std::string& query_text) {
  auto fo = ParseFo(query_text);
  if (fo.ok()) {
    // Boolean-query convention: free variables are existentially closed.
    FoPtr sentence = *fo;
    std::set<std::string> free = sentence->FreeVariables();
    if (!free.empty()) {
      sentence = Fo::Exists(
          std::vector<std::string>(free.begin(), free.end()), sentence);
    }
    return sentence;
  }
  auto ucq = ParseUcqShorthand(query_text);
  if (ucq.ok()) return *ucq;
  return Status::InvalidArgument(
      StrFormat("cannot parse query (as FO: %s; as UCQ: %s)",
                fo.status().message().c_str(),
                ucq.status().message().c_str()));
}

namespace {

/// One-shot session reproducing the historical per-query behaviour: a
/// private pool at the query's requested width, no cross-query cache.
SessionOptions SingleShotOptions(const QueryOptions& options) {
  SessionOptions session_options;
  session_options.num_threads = options.exec.num_threads;
  session_options.cache_results = false;
  return session_options;
}

}  // namespace

Result<QueryAnswer> ProbDatabase::Query(const std::string& query_text,
                                        const QueryOptions& options) const {
  Session session(this, SingleShotOptions(options));
  return session.Query(query_text, options);
}

Result<QueryAnswer> ProbDatabase::QueryFo(const FoPtr& sentence,
                                          const QueryOptions& options) const {
  Session session(this, SingleShotOptions(options));
  return session.QueryFo(sentence, options);
}

Result<QueryAnswer> ProbDatabase::QueryFoWithContext(
    const FoPtr& sentence, const QueryOptions& options,
    ExecContext* ctx) const {
  QueryAnswer answer;
  QueryTrace* trace = ctx ? ctx->trace() : nullptr;

  // 1. Lifted inference (exact, polynomial time) when the query is safe.
  if (options.prefer_lifted) {
    TraceSpan lifted_span(trace, TracePhase::kLifted);
    LiftedStats stats;
    auto lifted = LiftedProbabilityFo(sentence, db_, options.lifted, &stats);
    if (lifted.ok()) {
      lifted_span.AddCounter("separator_groundings",
                             stats.separator_groundings);
      lifted_span.AddCounter("inclusion_exclusions",
                             stats.inclusion_exclusions);
      if (stats.inclusion_exclusions > 0) {
        lifted_span.AddCounter("ie_max_width", stats.ie_max_width);
        lifted_span.AddCounter("ie_terms_cancelled",
                               stats.ie_terms_cancelled);
      }
      answer.probability = *lifted;
      answer.lower = answer.upper = *lifted;
      answer.method = InferenceMethod::kLifted;
      answer.exact = true;
      answer.explanation = StrFormat(
          "lifted inference: %llu separator groundings, %llu "
          "inclusion-exclusions (%llu cancelled terms)",
          static_cast<unsigned long long>(stats.separator_groundings),
          static_cast<unsigned long long>(stats.inclusion_exclusions),
          static_cast<unsigned long long>(stats.ie_terms_cancelled));
      return answer;
    }
    if (lifted.status().code() != StatusCode::kUnsupported) {
      return lifted.status();
    }
    // A lifted attempt that fails Unsupported *is* the engine's safety
    // check: the rules failing means the query left the polynomial regime
    // (exactly the dichotomy boundary for the classes with one), so the
    // span is reclassified and the grounded machinery below takes over.
    lifted_span.SetPhase(TracePhase::kSafetyCheck);
  }

  // 2. Grounded exact inference within the decision and wall-clock budget.
  // The formula store and the solver live in optionals so the answer paths
  // can free them while their trace span is still open: for hard lineages
  // the teardown (memo table + hash-consed nodes) is a visible slice of the
  // end-to-end latency, and an untimed gap there would break the invariant
  // that the top-level spans account for the query's wall clock.
  std::optional<FormulaManager> mgr(std::in_place);
  Lineage lineage;
  // UCQ-shaped sentences ground through the compiled join engine —
  // polynomial in the data rather than domain^#vars, and it engages the
  // cost-based atom order, the columnar executor, and EXPLAIN ANALYZE's
  // join profile. Everything else (negation, universals) takes the FO
  // grounder over the active domain. Hoisted out of the block because the
  // Monte Carlo fallback below reuses the UCQ view.
  auto as_ucq = FoToUcq(sentence);
  {
    TraceSpan lineage_span(trace, TracePhase::kLineage);
    if (as_ucq.ok()) {
      GroundingOptions grounding;
      grounding.exec = ctx;
      PDB_ASSIGN_OR_RETURN(lineage,
                           BuildUcqLineage(*as_ucq, db_, &*mgr, grounding));
    } else {
      PDB_ASSIGN_OR_RETURN(lineage, BuildLineage(sentence, db_, &*mgr));
      // The FO grounder has no ExecContext plumbing of its own; account
      // for its node production here so pdb_lineage_nodes_total covers the
      // grounded-exact path, not just the UCQ engine.
      if (ctx != nullptr) ctx->AddLineageNodes(mgr->NumNodes());
    }
    lineage_span.AddCounter("lineage_vars", lineage.vars.size());
  }
  DpllOptions dpll_options;
  dpll_options.max_decisions = options.max_dpll_decisions;
  dpll_options.exec = ctx;
  // The session owns the cross-query cache and hands it down through the
  // context; a null pointer simply disables cross-query memoization.
  dpll_options.shared_cache = ctx ? ctx->wmc_cache() : nullptr;
  std::optional<DpllCounter> counter(
      std::in_place, &*mgr, WeightsFromProbabilities(lineage.probs),
      dpll_options);
  TraceSpan dpll_span(trace, TracePhase::kDpll);
  auto grounded = counter->Compute(lineage.root);
  dpll_span.AddCounter("decisions", counter->stats().decisions);
  dpll_span.AddCounter("cache_hits", counter->stats().cache_hits);
  dpll_span.AddCounter("component_splits", counter->stats().component_splits);
  if (counter->stats().shared_hits + counter->stats().shared_misses > 0) {
    dpll_span.AddCounter("shared_hits", counter->stats().shared_hits);
    dpll_span.AddCounter("shared_probe_ns", counter->stats().shared_probe_ns);
  }
  if (grounded.ok()) {
    answer.probability = *grounded;
    answer.lower = answer.upper = *grounded;
    answer.method = InferenceMethod::kGroundedExact;
    answer.exact = true;
    answer.explanation = StrFormat(
        "grounded WMC: %llu decisions, %llu cache hits, %llu component "
        "splits over %zu lineage variables",
        static_cast<unsigned long long>(counter->stats().decisions),
        static_cast<unsigned long long>(counter->stats().cache_hits),
        static_cast<unsigned long long>(counter->stats().component_splits),
        lineage.vars.size());
    if (counter->stats().shared_hits > 0) {
      answer.explanation += StrFormat(
          ", %llu shared-cache hits",
          static_cast<unsigned long long>(counter->stats().shared_hits));
    }
    counter.reset();
    mgr.reset();
    dpll_span.End();
    return answer;
  }
  dpll_span.End();
  if (grounded.status().code() != StatusCode::kResourceExhausted &&
      grounded.status().code() != StatusCode::kDeadlineExceeded) {
    return grounded.status();
  }
  // Degrade, don't fail: when the deadline killed exact inference, clear it
  // so the sampling fallback below completes (the report still records the
  // overrun), and say so in the explanation.
  std::string fallback_note;
  if (grounded.status().code() == StatusCode::kDeadlineExceeded) {
    ctx->ClearDeadline();
    fallback_note = StrFormat("exact WMC abandoned (%s); fell back to ",
                              grounded.status().message().c_str());
  }

  // 3. Approximation. Plan bounds when the query is a self-join-free CQ.
  std::optional<PlanBounds> bounds;
  if (as_ucq.ok() && as_ucq->size() == 1 &&
      as_ucq->disjuncts()[0].IsSelfJoinFree()) {
    auto computed = ComputePlanBounds(as_ucq->disjuncts()[0], db_);
    if (computed.ok()) bounds = *computed;
  }
  if (options.allow_monte_carlo && as_ucq.ok()) {
    // UCQ lineages are monotone DNFs: Karp-Luby gives relative-error
    // guarantees independent of how small the probability is.
    GroundingOptions grounding;
    grounding.exec = ctx;
    auto dnf = BuildUcqDnf(*as_ucq, db_, grounding);
    if (dnf.ok()) {
      TraceSpan mc_span(trace, TracePhase::kMonteCarlo);
      Rng rng(options.monte_carlo_seed);
      Result<Estimate> estimate = Status::Internal("unreached");
      if (options.monte_carlo_target_stderr > 0) {
        AdaptiveSampleOptions adaptive;
        adaptive.max_samples = options.monte_carlo_samples;
        adaptive.target_std_error = options.monte_carlo_target_stderr;
        estimate =
            KarpLubyDnfAdaptive(dnf->terms, dnf->probs, adaptive, &rng, ctx);
      } else {
        estimate = KarpLubyDnf(dnf->terms, dnf->probs,
                               options.monte_carlo_samples, &rng, ctx);
      }
      if (estimate.ok()) {
        mc_span.AddCounter("samples", estimate->samples);
        mc_span.AddCounter("dnf_terms", dnf->terms.size());
        answer.std_error = estimate->std_error;
        answer.probability = estimate->value;
        answer.lower =
            std::max(0.0, estimate->value - 2.0 * estimate->std_error);
        answer.upper =
            std::min(1.0, estimate->value + 2.0 * estimate->std_error);
        answer.method = InferenceMethod::kMonteCarlo;
        answer.exact = false;
        answer.explanation = fallback_note + StrFormat(
            "Karp-Luby: %llu samples over %zu DNF terms, stderr %.2g",
            static_cast<unsigned long long>(estimate->samples),
            dnf->terms.size(), estimate->std_error);
        if (bounds.has_value()) {
          answer.lower = std::max(answer.lower, bounds->lower);
          answer.upper = std::min(answer.upper, bounds->upper);
          answer.explanation += StrFormat(
              "; plan bounds [%.6g, %.6g] over %zu plans", bounds->lower,
              bounds->upper, bounds->num_plans);
        }
        // Free the (failed) exact solver inside the open span — see the
        // comment at `mgr`'s declaration.
        counter.reset();
        mgr.reset();
        return answer;
      }
    }
  }
  if (options.allow_monte_carlo) {
    TraceSpan mc_span(trace, TracePhase::kMonteCarlo);
    Rng rng(options.monte_carlo_seed);
    Estimate estimate =
        NaiveMonteCarlo(&*mgr, lineage.root, lineage.probs,
                        options.monte_carlo_samples, &rng, ctx);
    mc_span.AddCounter("samples", estimate.samples);
    answer.std_error = estimate.std_error;
    answer.probability = estimate.value;
    answer.lower = std::max(0.0, estimate.value - 2.0 * estimate.std_error);
    answer.upper = std::min(1.0, estimate.value + 2.0 * estimate.std_error);
    answer.method = InferenceMethod::kMonteCarlo;
    answer.exact = false;
    answer.explanation = fallback_note + StrFormat(
        "Monte Carlo: %llu samples, stderr %.2g",
        static_cast<unsigned long long>(estimate.samples),
        estimate.std_error);
    if (bounds.has_value()) {
      answer.lower = std::max(answer.lower, bounds->lower);
      answer.upper = std::min(answer.upper, bounds->upper);
      answer.explanation += StrFormat(
          "; plan bounds [%.6g, %.6g] over %zu plans", bounds->lower,
          bounds->upper, bounds->num_plans);
    }
    counter.reset();
    mgr.reset();
    return answer;
  }
  if (bounds.has_value()) {
    answer.lower = bounds->lower;
    answer.upper = bounds->upper;
    answer.probability = 0.5 * (bounds->lower + bounds->upper);
    answer.method = InferenceMethod::kPlanBounds;
    answer.exact = false;
    answer.explanation = StrFormat("oblivious plan bounds over %zu plans",
                                   bounds->num_plans);
    return answer;
  }
  return Status::ResourceExhausted(
      "query is too hard for exact inference and approximation is disabled");
}

Result<double> ProbDatabase::ConditionalProbability(
    const FoPtr& query, const FoPtr& evidence,
    const QueryOptions& options) const {
  FormulaManager mgr;
  // Ground the conjunction and the evidence against one variable space:
  // BuildLineage numbers variables per call, so ground the combined
  // formula once and derive both roots from it via the shared manager.
  FoPtr joint_sentence = Fo::And(query, evidence);
  PDB_ASSIGN_OR_RETURN(Lineage joint, BuildLineage(joint_sentence, db_, &mgr));
  DpllOptions dpll_options;
  dpll_options.max_decisions = options.max_dpll_decisions;
  DpllCounter joint_counter(&mgr, WeightsFromProbabilities(joint.probs),
                            dpll_options);
  PDB_ASSIGN_OR_RETURN(double p_joint, joint_counter.Compute(joint.root));

  FormulaManager evidence_mgr;
  PDB_ASSIGN_OR_RETURN(Lineage evidence_lineage,
                       BuildLineage(evidence, db_, &evidence_mgr));
  DpllCounter evidence_counter(
      &evidence_mgr, WeightsFromProbabilities(evidence_lineage.probs),
      dpll_options);
  PDB_ASSIGN_OR_RETURN(double p_evidence,
                       evidence_counter.Compute(evidence_lineage.root));
  if (p_evidence == 0.0) {
    return Status::InvalidArgument("evidence has probability zero");
  }
  return p_joint / p_evidence;
}

Result<std::vector<ProbDatabase::TupleInfluence>> ProbDatabase::TopInfluences(
    const FoPtr& sentence, size_t k, const QueryOptions& options) const {
  FormulaManager mgr;
  PDB_ASSIGN_OR_RETURN(Lineage lineage, BuildLineage(sentence, db_, &mgr));
  DpllOptions dpll_options;
  dpll_options.max_decisions = options.max_dpll_decisions;
  std::vector<TupleInfluence> influences;
  for (VarId v = 0; v < lineage.vars.size(); ++v) {
    NodeId present = mgr.Cofactor(lineage.root, v, true);
    NodeId absent = mgr.Cofactor(lineage.root, v, false);
    DpllCounter c1(&mgr, WeightsFromProbabilities(lineage.probs),
                   dpll_options);
    PDB_ASSIGN_OR_RETURN(double p1, c1.Compute(present));
    DpllCounter c0(&mgr, WeightsFromProbabilities(lineage.probs),
                   dpll_options);
    PDB_ASSIGN_OR_RETURN(double p0, c0.Compute(absent));
    const LineageVar& lv = lineage.vars[v];
    PDB_ASSIGN_OR_RETURN(const Relation* rel, db_.Get(lv.relation));
    influences.push_back({lv.relation, rel->tuple(lv.row), p1 - p0});
  }
  std::sort(influences.begin(), influences.end(),
            [](const TupleInfluence& a, const TupleInfluence& b) {
              return std::abs(a.influence) > std::abs(b.influence);
            });
  if (influences.size() > k) influences.resize(k);
  return influences;
}

Result<QueryAnswer> ProbDatabase::QuerySqlBoolean(
    const std::string& sql, const QueryOptions& options) const {
  Session session(this, SingleShotOptions(options));
  return session.QuerySqlBoolean(sql, options);
}

Result<Relation> ProbDatabase::QuerySqlAnswers(
    const std::string& sql, const QueryOptions& options) const {
  Session session(this, SingleShotOptions(options));
  return session.QuerySqlAnswers(sql, options);
}

Result<Relation> ProbDatabase::QueryWithAnswers(
    const ConjunctiveQuery& cq, const std::vector<std::string>& head_vars,
    const QueryOptions& options,
    std::vector<AnswerTupleInfo>* info) const {
  Session session(this, SingleShotOptions(options));
  return session.QueryWithAnswers(cq, head_vars, options, info);
}

}  // namespace pdb
