/// \file pdb.h
/// \brief Public engine facade: a probabilistic database with automatic
/// inference-strategy selection.
///
/// `ProbDatabase` owns a TID and answers queries by picking the best
/// applicable method, mirroring the paper's architecture:
///
///   1. lifted inference (§5) — polynomial time, exact — when the query is
///      safe;
///   2. grounded inference (§7): lineage + DPLL-style weighted model
///      counting — exact but possibly exponential — within a decision
///      budget;
///   3. otherwise approximation: extensional plan bounds (§6, for
///      self-join-free CQs) and Monte Carlo estimation.
///
/// Boolean queries return a probability; non-Boolean conjunctive queries
/// return a relation of answer tuples with their marginal probabilities.

#ifndef PDB_CORE_PDB_H_
#define PDB_CORE_PDB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "exec/context.h"
#include "lifted/lifted.h"
#include "logic/parser.h"
#include "obs/trace.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdb {

class Session;

/// Which engine produced an answer.
enum class InferenceMethod {
  kLifted,
  kGroundedExact,
  kMonteCarlo,
  kPlanBounds,
};

const char* InferenceMethodToString(InferenceMethod method);

/// Answer to a Boolean query.
struct QueryAnswer {
  double probability = 0.0;
  /// Guaranteed (or, for Monte Carlo, ±2σ) enclosure of the truth.
  double lower = 0.0;
  double upper = 1.0;
  InferenceMethod method = InferenceMethod::kLifted;
  bool exact = false;
  /// Standard error of a Monte Carlo estimate (0 for exact answers).
  double std_error = 0.0;
  std::string explanation;
  /// Execution counters for this query (threads, samples, cache hits,
  /// whether a deadline fired). Populated by Query/QueryFo.
  ExecReport report;
  /// Per-phase trace of this execution when `QueryOptions::trace` was set;
  /// null otherwise (and on answers restored from the result cache before
  /// tracing — the trace of a cache hit covers only parse + cache probe).
  std::shared_ptr<const QueryTrace> trace;
};

/// Per-answer-tuple execution metadata of QueryWithAnswers, parallel to the
/// rows of the returned relation: which engine produced each marginal and,
/// for sampled marginals, the achieved standard error.
struct AnswerTupleInfo {
  InferenceMethod method = InferenceMethod::kLifted;
  bool exact = false;
  /// Standard error of the tuple's marginal (0 when exact).
  double std_error = 0.0;
  std::string explanation;
};

/// Tuning for query evaluation.
struct QueryOptions {
  /// Try lifted inference first (turn off to force grounded evaluation).
  bool prefer_lifted = true;
  /// DPLL decision budget before falling back to approximation.
  uint64_t max_dpll_decisions = 1u << 22;
  /// Allow the Monte Carlo fallback.
  bool allow_monte_carlo = true;
  uint64_t monte_carlo_samples = 200000;
  uint64_t monte_carlo_seed = 20200614;  // PODS'20 opening day
  /// When > 0, the Karp-Luby fallback runs the adaptive (anytime)
  /// estimator: it draws samples in batches and stops as soon as the
  /// running standard error falls to this target (or the deadline fires),
  /// instead of always spending the full `monte_carlo_samples` budget.
  /// 0 keeps the classic fixed-budget estimator, bit-for-bit.
  double monte_carlo_target_stderr = 0.0;
  /// Record a per-phase `QueryTrace` for this query (obs/trace.h); the
  /// finished trace rides on `QueryAnswer::trace` and in the session's
  /// ring buffer of recent traces. Off by default: tracing costs clock
  /// reads in the deep loops. Like `LiftedOptions::trace`, this is a
  /// metadata side channel and is deliberately not part of the result
  /// cache key — a cache hit yields a trace without execution phases.
  bool trace = false;
  LiftedOptions lifted;
  /// Parallelism and wall-clock budget. With `deadline_ms` set, exact
  /// grounded inference that overruns the budget falls back to Monte Carlo
  /// (the approximation itself runs with the deadline cleared, so a budget
  /// overrun yields an estimate, never an error or a hang). Monte Carlo
  /// estimates are bit-identical across `num_threads` for a fixed seed.
  ExecOptions exec;
};

/// Parses Boolean query text: an FO sentence or the datalog-style UCQ
/// shorthand; free variables are existentially closed.
Result<FoPtr> ParseBooleanQuery(const std::string& query_text);

/// A tuple-independent probabilistic database plus its query engines.
///
/// Queries are answered through a `Session` (core/session.h): a long-lived
/// object owning the worker pool and the cross-query result cache. The
/// Query* methods below are thin wrappers that route through a private
/// per-call session, preserving the one-shot semantics (pool per query, no
/// caching); callers serving many concurrent queries should hold one
/// Session and issue queries through it so all of them share workers.
class ProbDatabase {
 public:
  ProbDatabase() = default;
  explicit ProbDatabase(Database db) : db_(std::move(db)) {}

  Database& database() { return db_; }
  const Database& database() const { return db_; }

  Status AddRelation(Relation relation) {
    Status status = db_.AddRelation(std::move(relation));
    // Bump only on success — a failed add changes nothing, so sessions
    // need not drop their caches for it.
    if (status.ok()) BumpGeneration();
    return status;
  }

  /// Mutation counter used by sessions to invalidate their caches. Bumped
  /// by AddRelation; callers mutating relations through `database()`
  /// directly must call BumpGeneration() (or Session::InvalidateCache)
  /// themselves.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_release);
  }

  /// Parses and evaluates a Boolean query. The text may be an FO sentence
  /// ("forall x forall y (S(x,y) => R(x))") or the datalog-style UCQ
  /// shorthand ("R(x), S(x,y) ; T(u), S(u,v)"). Free variables are
  /// existentially closed.
  Result<QueryAnswer> Query(const std::string& query_text,
                            const QueryOptions& options = {}) const;

  /// Evaluates a Boolean FO sentence.
  Result<QueryAnswer> QueryFo(const FoPtr& sentence,
                              const QueryOptions& options = {}) const;

  /// Evaluates a non-Boolean conjunctive query: `head_vars` become the
  /// output columns, and each distinct answer tuple carries its marginal
  /// probability. The CQ's remaining variables are existential. When
  /// `info` is non-null it receives one `AnswerTupleInfo` per output row
  /// (method, exactness, achieved std error).
  Result<Relation> QueryWithAnswers(const ConjunctiveQuery& cq,
                                    const std::vector<std::string>& head_vars,
                                    const QueryOptions& options = {},
                                    std::vector<AnswerTupleInfo>* info =
                                        nullptr) const;

  /// Conditional probability P(query | evidence) — the paper's §3
  /// mechanism for correlations: both sentences are grounded jointly and
  /// the ratio P(query ∧ evidence) / P(evidence) is counted exactly.
  Result<double> ConditionalProbability(const FoPtr& query,
                                        const FoPtr& evidence,
                                        const QueryOptions& options = {}) const;

  /// Influence of each uncertain tuple on a Boolean query:
  /// P(Q | t present) - P(Q | t absent), the sensitivity of the answer to
  /// that tuple. Returns the `k` most influential tuples, largest absolute
  /// influence first. Exact (lineage cofactors + DPLL).
  struct TupleInfluence {
    std::string relation;
    Tuple tuple;
    double influence = 0.0;
  };
  Result<std::vector<TupleInfluence>> TopInfluences(
      const FoPtr& sentence, size_t k,
      const QueryOptions& options = {}) const;

  /// Evaluates "SELECT PROB() FROM ... WHERE ..." (see sql/sql.h).
  Result<QueryAnswer> QuerySqlBoolean(const std::string& sql,
                                      const QueryOptions& options = {}) const;

  /// Evaluates a column-select SQL query: answer tuples with marginals.
  Result<Relation> QuerySqlAnswers(const std::string& sql,
                                   const QueryOptions& options = {}) const;

 private:
  friend class Session;

  /// Strategy-selection pipeline behind QueryFo, running against an
  /// already-configured execution context (pool + deadline).
  Result<QueryAnswer> QueryFoWithContext(const FoPtr& sentence,
                                         const QueryOptions& options,
                                         ExecContext* ctx) const;

  Database db_;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace pdb

#endif  // PDB_CORE_PDB_H_
