#include "core/session.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "boolean/lineage.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "sql/sql.h"
#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

namespace {

/// Resolves SessionOptions::num_threads (0 = one per hardware thread).
int ResolveThreads(int num_threads) {
  if (num_threads <= 0) {
    return static_cast<int>(ThreadPool::HardwareThreads());
  }
  return num_threads;
}

/// Microseconds elapsed since `start` (for the latency histograms).
uint64_t MicrosSince(ExecContext::Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          ExecContext::Clock::now() - start)
          .count());
}

}  // namespace

/// RAII registration of one in-flight ExecContext: visible to
/// Session::CancelInFlight() between construction and destruction, and
/// counted in the pdb_requests_in_flight gauge when top-level.
class InFlightGuard {
 public:
  InFlightGuard(Session* session, ExecContext* ctx, bool top_level)
      : session_(session), ctx_(ctx), top_level_(top_level) {
    std::lock_guard<std::mutex> lock(session_->mu_);
    session_->live_contexts_.insert(ctx_);
    if (top_level_) {
      ++session_->top_level_in_flight_;
      session_->tickers_.requests_in_flight->Add(1);
    }
  }
  ~InFlightGuard() {
    std::lock_guard<std::mutex> lock(session_->mu_);
    session_->live_contexts_.erase(ctx_);
    if (top_level_) {
      --session_->top_level_in_flight_;
      session_->tickers_.requests_in_flight->Add(-1);
    }
  }

  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

 private:
  Session* session_;
  ExecContext* ctx_;
  bool top_level_;
};

Session::Session(const ProbDatabase* db, SessionOptions options)
    : db_(db),
      options_(options),
      resolved_threads_(ResolveThreads(options.num_threads)),
      generation_seen_(db->generation()) {
  cumulative_.num_threads = resolved_threads_;
  if (options_.share_wmc_cache) {
    if (options_.external_wmc_cache) {
      wmc_cache_ = options_.external_wmc_cache;
    } else {
      WmcCacheOptions cache_options;
      cache_options.num_shards = options_.wmc_cache_shards;
      cache_options.max_bytes = options_.wmc_cache_bytes;
      wmc_cache_ = std::make_shared<WmcCache>(cache_options);
    }
  }
  if (options_.cache_indexes) {
    IndexCacheOptions index_options;
    index_options.num_shards = options_.index_cache_shards;
    index_cache_ = std::make_unique<IndexCache>(index_options);
  }
  // Resolve every engine ticker once; updates are then lock-free.
  tickers_.queries = metrics_.GetCounter("pdb_queries_total");
  tickers_.query_errors = metrics_.GetCounter("pdb_query_errors_total");
  tickers_.result_cache_hits =
      metrics_.GetCounter("pdb_result_cache_hits_total");
  tickers_.result_cache_misses =
      metrics_.GetCounter("pdb_result_cache_misses_total");
  tickers_.result_cache_evictions =
      metrics_.GetCounter("pdb_result_cache_evictions_total");
  tickers_.queries_lifted = metrics_.GetCounter("pdb_queries_lifted_total");
  tickers_.queries_grounded_exact =
      metrics_.GetCounter("pdb_queries_grounded_exact_total");
  tickers_.queries_monte_carlo =
      metrics_.GetCounter("pdb_queries_monte_carlo_total");
  tickers_.queries_plan_bounds =
      metrics_.GetCounter("pdb_queries_plan_bounds_total");
  tickers_.deadline_exceeded =
      metrics_.GetCounter("pdb_deadline_exceeded_total");
  tickers_.queries_cancelled =
      metrics_.GetCounter("pdb_queries_cancelled_total");
  tickers_.exec_tasks = metrics_.GetCounter("pdb_exec_tasks_total");
  tickers_.mc_samples = metrics_.GetCounter("pdb_mc_samples_total");
  tickers_.mc_batches = metrics_.GetCounter("pdb_mc_batches_total");
  tickers_.dpll_decisions = metrics_.GetCounter("pdb_dpll_decisions_total");
  tickers_.dpll_cache_hits = metrics_.GetCounter("pdb_dpll_cache_hits_total");
  tickers_.dpll_component_splits =
      metrics_.GetCounter("pdb_dpll_component_splits_total");
  tickers_.dpll_parallel_splits =
      metrics_.GetCounter("pdb_dpll_parallel_splits_total");
  tickers_.wmc_shared_hits = metrics_.GetCounter("pdb_wmc_shared_hits_total");
  tickers_.wmc_shared_misses =
      metrics_.GetCounter("pdb_wmc_shared_misses_total");
  tickers_.wmc_shared_inserts =
      metrics_.GetCounter("pdb_wmc_shared_inserts_total");
  tickers_.wmc_shared_evictions =
      metrics_.GetCounter("pdb_wmc_shared_evictions_total");
  tickers_.lineage_matches = metrics_.GetCounter("pdb_lineage_matches_total");
  tickers_.lineage_nodes = metrics_.GetCounter("pdb_lineage_nodes_total");
  tickers_.index_builds = metrics_.GetCounter("pdb_index_builds_total");
  tickers_.index_cache_hits =
      metrics_.GetCounter("pdb_index_cache_hits_total");
  tickers_.shed = metrics_.GetCounter("pdb_shed_total");
  tickers_.admission_rejected =
      metrics_.GetCounter("pdb_admission_rejected_total");
  tickers_.sessions_active = metrics_.GetGauge("pdb_sessions_active");
  tickers_.sessions_active->Set(1);  // summed across a server's session pool
  tickers_.requests_in_flight = metrics_.GetGauge("pdb_requests_in_flight");
  tickers_.wmc_shared_bytes = metrics_.GetGauge("pdb_wmc_shared_bytes");
  tickers_.wmc_shared_entries = metrics_.GetGauge("pdb_wmc_shared_entries");
  tickers_.result_cache_entries =
      metrics_.GetGauge("pdb_result_cache_entries");
  tickers_.index_cache_entries =
      metrics_.GetGauge("pdb_index_cache_entries");
  tickers_.query_latency_us = metrics_.GetHistogram("pdb_query_latency_us");
  tickers_.sql_statement_latency_us =
      metrics_.GetHistogram("pdb_sql_statement_latency_us");
}

Session::~Session() = default;  // pool destructor drains + joins

ThreadPool* Session::pool() {
  if (resolved_threads_ <= 1) return nullptr;
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(resolved_threads_));
  });
  return pool_.get();
}

void Session::CancelInFlight() {
  std::lock_guard<std::mutex> lock(mu_);
  for (ExecContext* ctx : live_contexts_) ctx->Cancel();
}

int64_t Session::requests_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return top_level_in_flight_;
}

void Session::NoteAdmissionRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  cumulative_.admission_rejected += 1;
  tickers_.admission_rejected->Add(1);
  tickers_.shed->Add(1);
}

void Session::InvalidateCache() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
    lru_.clear();
  }
  // An externally owned WMC cache is left alone: its entries stay
  // value-correct (self-validating keys), other sessions share it, and it
  // may hold warm-restart entries reloaded from the component store.
  if (wmc_cache_ && !options_.external_wmc_cache) wmc_cache_->Clear();
  if (index_cache_) index_cache_->Clear();
}

void Session::RefreshGenerationLocked(uint64_t current_generation) {
  if (current_generation == generation_seen_) return;
  // The database mutated since this session last looked: drop the result
  // cache (its answers may be stale) and the shared WMC cache (its entries
  // stay value-correct thanks to the weight fingerprints, but they key
  // lineages of the previous database and would only waste the budget).
  cache_.clear();
  lru_.clear();
  // A private WMC cache only keys lineages of the previous database state,
  // so its entries would just waste the budget. A shared external cache is
  // kept: other sessions (and warm-restart entries reloaded from disk) use
  // it, and the fingerprinted keys make stale entries harmless.
  if (wmc_cache_ && !options_.external_wmc_cache) wmc_cache_->Clear();
  // Index entries reference rows of the previous database state.
  if (index_cache_) index_cache_->Clear();
  generation_seen_ = current_generation;
}

const QueryAnswer* Session::CacheLookupLocked(const std::string& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  // Refresh recency: splice the key to the front of the LRU list.
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return &it->second.answer;
}

void Session::CacheInsertLocked(std::string key, QueryAnswer answer) {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A concurrent query answered the same key first; keep the existing
    // entry (the answers are identical) and just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  while (cache_.size() >= options_.max_cache_entries && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    tickers_.result_cache_evictions->Add(1);
  }
  if (options_.max_cache_entries == 0) return;
  lru_.push_front(key);
  cache_.emplace(std::move(key),
                 ResultEntry{std::move(answer), lru_.begin()});
}

size_t Session::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

uint64_t Session::queries_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_served_;
}

uint64_t Session::result_cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return result_cache_hits_;
}

WmcCacheStats Session::wmc_cache_stats() const {
  return wmc_cache_ ? wmc_cache_->stats() : WmcCacheStats{};
}

IndexCacheStats Session::index_cache_stats() const {
  return index_cache_ ? index_cache_->stats() : IndexCacheStats{};
}

ExecReport Session::CumulativeReport() const {
  ExecReport report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    report = cumulative_;
  }
  if (wmc_cache_) {
    WmcCacheStats stats = wmc_cache_->stats();
    report.wmc_shared_inserts = stats.inserts;
    report.wmc_shared_evictions = stats.evictions;
    report.wmc_shared_bytes = stats.bytes;
  }
  return report;
}

MetricsSnapshot Session::SnapshotMetrics() const {
  // Refresh the overlay metrics from their sources of truth before
  // copying: the shared WMC cache keeps its own insert/eviction/size
  // counters (a single query cannot attribute them), and the result-cache
  // level lives behind mu_.
  if (wmc_cache_) {
    WmcCacheStats stats = wmc_cache_->stats();
    tickers_.wmc_shared_inserts->Set(stats.inserts);
    tickers_.wmc_shared_evictions->Set(stats.evictions);
    tickers_.wmc_shared_bytes->Set(static_cast<int64_t>(stats.bytes));
    tickers_.wmc_shared_entries->Set(static_cast<int64_t>(stats.entries));
  }
  if (index_cache_) {
    tickers_.index_cache_entries->Set(
        static_cast<int64_t>(index_cache_->stats().entries));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tickers_.result_cache_entries->Set(
        static_cast<int64_t>(cache_.size()));
  }
  return metrics_.Snapshot();
}

std::string Session::MetricsText() const {
  return SnapshotMetrics().RenderPrometheus();
}

std::string Session::MetricsJson() const {
  return SnapshotMetrics().RenderJson();
}

std::vector<std::shared_ptr<const QueryTrace>> Session::recent_traces()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {traces_.begin(), traces_.end()};
}

void Session::RetainTrace(const std::shared_ptr<QueryTrace>& trace,
                          bool finish) {
  if (!trace) return;
  if (finish) trace->Finish();
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_front(trace);
  while (traces_.size() > options_.trace_ring_size) traces_.pop_back();
}

void Session::AggregateLocked(const ExecReport& report) {
  cumulative_.tasks_run += report.tasks_run;
  cumulative_.samples_drawn += report.samples_drawn;
  cumulative_.mc_batches += report.mc_batches;
  cumulative_.cache_hits += report.cache_hits;
  cumulative_.dpll_decisions += report.dpll_decisions;
  cumulative_.dpll_component_splits += report.dpll_component_splits;
  cumulative_.dpll_parallel_splits += report.dpll_parallel_splits;
  cumulative_.wmc_shared_hits += report.wmc_shared_hits;
  cumulative_.wmc_shared_misses += report.wmc_shared_misses;
  cumulative_.lineage_matches += report.lineage_matches;
  cumulative_.lineage_nodes += report.lineage_nodes;
  cumulative_.index_builds += report.index_builds;
  cumulative_.index_cache_hits += report.index_cache_hits;
  cumulative_.shed_tasks += report.shed_tasks;
  cumulative_.admission_rejected += report.admission_rejected;
  cumulative_.cancelled = cumulative_.cancelled || report.cancelled;
  cumulative_.deadline_exceeded =
      cumulative_.deadline_exceeded || report.deadline_exceeded;
  // Mirror into the registry right here, under the same lock and from the
  // same report, so the tickers and CumulativeReport() agree by
  // construction no matter how queries interleave.
  tickers_.exec_tasks->Add(report.tasks_run);
  tickers_.mc_samples->Add(report.samples_drawn);
  tickers_.mc_batches->Add(report.mc_batches);
  tickers_.dpll_cache_hits->Add(report.cache_hits);
  tickers_.dpll_decisions->Add(report.dpll_decisions);
  tickers_.dpll_component_splits->Add(report.dpll_component_splits);
  tickers_.dpll_parallel_splits->Add(report.dpll_parallel_splits);
  tickers_.wmc_shared_hits->Add(report.wmc_shared_hits);
  tickers_.wmc_shared_misses->Add(report.wmc_shared_misses);
  tickers_.lineage_matches->Add(report.lineage_matches);
  tickers_.lineage_nodes->Add(report.lineage_nodes);
  tickers_.index_builds->Add(report.index_builds);
  tickers_.index_cache_hits->Add(report.index_cache_hits);
  // pdb_shed_total covers every form of load shedding: pool tasks degraded
  // to inline execution plus admission-queue drops (the latter are 0 in
  // engine reports and arrive via NoteAdmissionRejected).
  tickers_.shed->Add(report.shed_tasks + report.admission_rejected);
  tickers_.admission_rejected->Add(report.admission_rejected);
  if (report.deadline_exceeded) tickers_.deadline_exceeded->Add(1);
  if (report.cancelled) tickers_.queries_cancelled->Add(1);
}

void Session::TickTopLevelLocked(const Result<QueryAnswer>& answer,
                                 uint64_t latency_us) {
  tickers_.queries->Add(1);
  tickers_.query_latency_us->Record(latency_us);
  if (!answer.ok()) {
    tickers_.query_errors->Add(1);
    return;
  }
  switch (answer->method) {
    case InferenceMethod::kLifted:
      tickers_.queries_lifted->Add(1);
      break;
    case InferenceMethod::kGroundedExact:
      tickers_.queries_grounded_exact->Add(1);
      break;
    case InferenceMethod::kMonteCarlo:
      tickers_.queries_monte_carlo->Add(1);
      break;
    case InferenceMethod::kPlanBounds:
      tickers_.queries_plan_bounds->Add(1);
      break;
  }
}

std::string Session::CacheKey(const FoPtr& sentence,
                              const QueryOptions& options) {
  // Only exact answers are cached, so the key covers every option that can
  // shape an exact answer's value *or* metadata (method/explanation/bounds):
  // the lifted preference, the DPLL decision budget, the Monte Carlo
  // fallback toggle, and the lifted-engine knobs that decide whether lifted
  // inference succeeds (and hence which engine is reported). Thread counts,
  // deadlines, and sampling parameters cannot change an exact answer. One
  // caveat: LiftedOptions::trace is a side channel — a cache hit skips the
  // derivation log the first execution would have appended.
  return StrFormat("%d|%llu|%d|%d|%llu|%llu|", options.prefer_lifted ? 1 : 0,
                   static_cast<unsigned long long>(
                       options.max_dpll_decisions),
                   options.allow_monte_carlo ? 1 : 0,
                   options.lifted.use_inclusion_exclusion ? 1 : 0,
                   static_cast<unsigned long long>(
                       options.lifted.max_ie_subsets),
                   static_cast<unsigned long long>(
                       options.lifted.max_depth)) +
         sentence->ToString();
}

Result<QueryAnswer> Session::Query(const std::string& query_text,
                                   const QueryOptions& options) {
  return QueryInternal(query_text, options, MakeTrace(options),
                       /*finish_trace=*/true);
}

Result<QueryAnswer> Session::QueryTraced(const std::string& query_text,
                                         const QueryOptions& options,
                                         std::shared_ptr<QueryTrace> trace) {
  return QueryInternal(query_text, options, std::move(trace),
                       /*finish_trace=*/false);
}

Result<QueryAnswer> Session::QueryInternal(const std::string& query_text,
                                           const QueryOptions& options,
                                           std::shared_ptr<QueryTrace> trace,
                                           bool finish_trace) {
  const ExecContext::Clock::time_point started = ExecContext::Clock::now();
  FoPtr sentence;
  {
    TraceSpan parse_span(trace.get(), TracePhase::kParse);
    auto parsed = ParseBooleanQuery(query_text);
    if (!parsed.ok()) {
      // A query that dies in the parser still counts: dashboards read the
      // error rate as pdb_query_errors_total / pdb_queries_total.
      parse_span.End();
      Result<QueryAnswer> failed = parsed.status();
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++queries_served_;
        TickTopLevelLocked(failed, MicrosSince(started));
      }
      RetainTrace(trace, finish_trace);
      return failed;
    }
    sentence = *std::move(parsed);
  }
  return QueryFoInternal(sentence, options, /*top_level=*/true,
                         std::move(trace), finish_trace);
}

Result<QueryAnswer> Session::QueryFo(const FoPtr& sentence,
                                     const QueryOptions& options) {
  return QueryFoInternal(sentence, options, /*top_level=*/true,
                         MakeTrace(options));
}

Result<QueryAnswer> Session::QueryFoInternal(
    const FoPtr& sentence, const QueryOptions& options, bool top_level,
    std::shared_ptr<QueryTrace> trace, bool finish_trace,
    JoinProfile* profile, bool bypass_cache) {
  const ExecContext::Clock::time_point started = ExecContext::Clock::now();
  const bool use_cache = options_.cache_results && !bypass_cache;
  std::string key;
  if (options_.cache_results) key = CacheKey(sentence, options);
  // Generation snapshot at query start: an answer may only be cached if
  // the database is still on this generation when the query finishes (see
  // the insert below). The snapshot also invalidates both caches lazily:
  // the first query after a mutation drops every stale entry.
  uint64_t generation_at_start = db_->generation();
  {
    TraceSpan probe_span(trace.get(), TracePhase::kCacheProbe);
    std::optional<QueryAnswer> hit;
    {
      std::lock_guard<std::mutex> lock(mu_);
      RefreshGenerationLocked(generation_at_start);
      if (use_cache) {
        if (const QueryAnswer* cached = CacheLookupLocked(key)) {
          tickers_.result_cache_hits->Add(1);
          hit = *cached;
          // A cached answer executed nothing in this query: hand back a
          // fresh report so per-query accounting stays isolated.
          hit->report = ExecReport{};
          hit->explanation += "; session result cache hit";
          if (top_level) {
            ++queries_served_;
            ++result_cache_hits_;
            Result<QueryAnswer> ok_answer = *hit;
            TickTopLevelLocked(ok_answer, MicrosSince(started));
          }
        } else {
          tickers_.result_cache_misses->Add(1);
        }
      }
    }
    if (hit) {
      probe_span.AddCounter("hit", 1);
      probe_span.End();
      if (top_level && trace) {
        RetainTrace(trace, finish_trace);
        hit->trace = trace;
      }
      return *std::move(hit);
    }
  }

  // Each query gets a private context (isolated counters, own deadline)
  // over the shared session pool and the session-shared WMC cache. A query
  // that asks for sequential execution gets no pool but still shares the
  // cache.
  ExecContext ctx(options.exec.num_threads == 1 ? nullptr : pool());
  ctx.set_wmc_cache(wmc_cache_.get());
  ctx.set_index_cache(index_cache_.get());
  ctx.set_trace(trace.get());
  ctx.set_join_profile(profile);
  if (options.exec.deadline_ms > 0) ctx.SetDeadline(options.exec.deadline_ms);
  InFlightGuard in_flight(this, &ctx, top_level);
  auto answer = db_->QueryFoWithContext(sentence, options, &ctx);
  ExecReport report = ctx.Report();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (top_level) {
      ++queries_served_;
      TickTopLevelLocked(answer, MicrosSince(started));
    }
    AggregateLocked(report);
    // Cache only if the database never mutated while this query ran: the
    // current generation must equal the snapshot taken at query start (a
    // `== generation_seen_` check alone races — a concurrent query could
    // advance generation_seen_ to a post-mutation generation and make this
    // stale answer look fresh).
    if (answer.ok() && options_.cache_results && answer->exact &&
        db_->generation() == generation_at_start &&
        generation_at_start == generation_seen_) {
      QueryAnswer cached = *answer;
      cached.report = report;
      cached.trace = nullptr;  // traces describe one execution, not the key
      CacheInsertLocked(std::move(key), std::move(cached));
    }
  }
  if (answer.ok()) answer->report = report;
  // Fan-out sub-queries only contribute spans; the owning call finishes
  // and retains the trace.
  if (top_level && trace) {
    RetainTrace(trace, finish_trace);
    if (answer.ok()) answer->trace = trace;
  }
  return answer;
}

Result<Relation> Session::QueryWithAnswers(
    const ConjunctiveQuery& cq, const std::vector<std::string>& head_vars,
    const QueryOptions& options, std::vector<AnswerTupleInfo>* info) {
  return QueryWithAnswersTraced(cq, head_vars, options, info,
                                MakeTrace(options));
}

Result<QueryAnswer> Session::QuerySqlBoolean(const std::string& sql,
                                             const QueryOptions& options) {
  return QuerySqlBooleanInternal(sql, options, MakeTrace(options),
                                 /*finish_trace=*/true);
}

Result<QueryAnswer> Session::QuerySqlBooleanTraced(
    const std::string& sql, const QueryOptions& options,
    std::shared_ptr<QueryTrace> trace) {
  return QuerySqlBooleanInternal(sql, options, std::move(trace),
                                 /*finish_trace=*/false);
}

Result<QueryAnswer> Session::QuerySqlBooleanInternal(
    const std::string& sql, const QueryOptions& options,
    std::shared_ptr<QueryTrace> trace, bool finish_trace) {
  const ExecContext::Clock::time_point started = ExecContext::Clock::now();
  CompiledSql compiled;
  {
    TraceSpan compile_span(trace.get(), TracePhase::kCompile);
    auto result = CompileSql(sql, db_->database());
    if (result.ok() && !result->boolean) {
      result = Status::InvalidArgument(
          "query selects columns; use QuerySqlAnswers (or SELECT PROB())");
    }
    if (!result.ok()) {
      compile_span.End();
      Result<QueryAnswer> failed = result.status();
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++queries_served_;
        TickTopLevelLocked(failed, MicrosSince(started));
      }
      tickers_.sql_statement_latency_us->Record(MicrosSince(started));
      RetainTrace(trace, finish_trace);
      return failed;
    }
    compiled = *std::move(result);
  }
  QueryOptions effective = options;
  if (compiled.target_stderr > 0) {
    effective.monte_carlo_target_stderr = compiled.target_stderr;
  }
  auto answer = QueryFoInternal(Ucq({compiled.cq}).ToFo(), effective,
                                /*top_level=*/true, std::move(trace),
                                finish_trace);
  tickers_.sql_statement_latency_us->Record(MicrosSince(started));
  return answer;
}

Result<Relation> Session::QuerySqlAnswers(const std::string& sql,
                                          const QueryOptions& options,
                                          std::vector<AnswerTupleInfo>* info) {
  return QuerySqlAnswersInternal(sql, options, info, MakeTrace(options),
                                 /*finish_trace=*/true);
}

Result<Relation> Session::QuerySqlAnswersTraced(
    const std::string& sql, const QueryOptions& options,
    std::vector<AnswerTupleInfo>* info, std::shared_ptr<QueryTrace> trace) {
  return QuerySqlAnswersInternal(sql, options, info, std::move(trace),
                                 /*finish_trace=*/false);
}

Result<Relation> Session::QuerySqlAnswersInternal(
    const std::string& sql, const QueryOptions& options,
    std::vector<AnswerTupleInfo>* info, std::shared_ptr<QueryTrace> trace,
    bool finish_trace) {
  const ExecContext::Clock::time_point started = ExecContext::Clock::now();
  CompiledSql compiled;
  {
    TraceSpan compile_span(trace.get(), TracePhase::kCompile);
    auto result = CompileSql(sql, db_->database());
    if (result.ok() && result->boolean) {
      result = Status::InvalidArgument(
          "SELECT PROB() is Boolean; use QuerySqlBoolean");
    }
    if (!result.ok()) {
      compile_span.End();
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++queries_served_;
        Result<QueryAnswer> failed = result.status();
        TickTopLevelLocked(failed, MicrosSince(started));
      }
      tickers_.sql_statement_latency_us->Record(MicrosSince(started));
      RetainTrace(trace, finish_trace);
      return result.status();
    }
    compiled = *std::move(result);
  }
  QueryOptions effective = options;
  if (compiled.target_stderr > 0) {
    effective.monte_carlo_target_stderr = compiled.target_stderr;
  }
  auto out = QueryWithAnswersTraced(compiled.cq, compiled.head_vars,
                                    effective, info, std::move(trace),
                                    finish_trace);
  tickers_.sql_statement_latency_us->Record(MicrosSince(started));
  return out;
}

Result<Relation> Session::QueryWithAnswersTraced(
    const ConjunctiveQuery& cq, const std::vector<std::string>& head_vars,
    const QueryOptions& options, std::vector<AnswerTupleInfo>* info,
    std::shared_ptr<QueryTrace> trace, bool finish_trace,
    JoinProfile* profile, ExecReport* report_out) {
  const ExecContext::Clock::time_point started = ExecContext::Clock::now();
  const Database& db = db_->database();
  std::set<std::string> vars = cq.Variables();
  for (const std::string& v : head_vars) {
    if (vars.count(v) == 0) {
      return Status::InvalidArgument(
          StrFormat("head variable '%s' does not occur in the query",
                    v.c_str()));
    }
  }
  // Candidate answers: distinct head-tuple bindings among the CQ matches,
  // each with a measured size of its residual lineage — DNF terms plus
  // distinct uncertain variables, i.e. the node count of the formula the
  // per-tuple marginal will actually ground — to weight the fan-out
  // schedule below.
  struct CandidateStat {
    size_t terms = 0;
    std::unordered_set<uint64_t> vars;  // (relation id << 40) | row
  };
  std::map<Tuple, CandidateStat> candidates;
  // Map head var -> (atom index, position) for extraction.
  std::vector<std::pair<size_t, size_t>> positions;
  for (const std::string& v : head_vars) {
    bool found = false;
    for (size_t i = 0; i < cq.atoms().size() && !found; ++i) {
      const Atom& atom = cq.atoms()[i];
      for (size_t j = 0; j < atom.args.size(); ++j) {
        if (atom.args[j].is_variable() && atom.args[j].var() == v) {
          positions.emplace_back(i, j);
          found = true;
          break;
        }
      }
    }
    PDB_CHECK(found);  // verified above: every head var occurs somewhere
  }
  std::vector<const Relation*> rel_by_atom;
  rel_by_atom.reserve(cq.atoms().size());
  for (const Atom& atom : cq.atoms()) {
    PDB_ASSIGN_OR_RETURN(const Relation* rel, db.Get(atom.predicate));
    rel_by_atom.push_back(rel);
  }

  // The candidate sweep below grounds against the session index cache, so
  // stale entries from a previous database generation must be dropped
  // first (QueryFoInternal does the same before touching its caches).
  {
    std::lock_guard<std::mutex> lock(mu_);
    RefreshGenerationLocked(db_->generation());
  }

  // The batch context: shared by the candidate sweep (which grounds
  // through the compiled join engine against the session index cache) and
  // the per-tuple fan-out below.
  ExecContext ctx(options.exec.num_threads == 1 ? nullptr : pool());
  ctx.set_wmc_cache(wmc_cache_.get());
  ctx.set_index_cache(index_cache_.get());
  ctx.set_trace(trace.get());
  ctx.set_join_profile(profile);
  if (options.exec.deadline_ms > 0) ctx.SetDeadline(options.exec.deadline_ms);
  InFlightGuard in_flight(this, &ctx, /*top_level=*/true);

  {
    // The candidate sweep is the fan-out's grounding step: classify it
    // with the lineage phase.
    TraceSpan enumerate_span(trace.get(), TracePhase::kLineage);
    GroundingOptions grounding;
    grounding.exec = &ctx;
    std::unordered_map<const Relation*, uint64_t> rel_ids;
    PDB_RETURN_NOT_OK(EnumerateCqMatches(cq, db, [&](const CqMatch& match) {
      Tuple head;
      head.reserve(positions.size());
      for (const auto& [atom_idx, pos] : positions) {
        const LineageVar& lv = match.atom_rows[atom_idx];
        head.push_back(rel_by_atom[atom_idx]->tuple(lv.row)[pos]);
      }
      CandidateStat& stat = candidates[std::move(head)];
      ++stat.terms;
      for (size_t i = 0; i < match.atom_rows.size(); ++i) {
        const Relation* rel = rel_by_atom[i];
        const size_t row = match.atom_rows[i].row;
        if (rel->prob(row) == 1.0) continue;  // folds away in the lineage
        auto [id_it, unused] = rel_ids.emplace(rel, rel_ids.size());
        stat.vars.insert((id_it->second << 40) | row);
      }
    }, grounding));
    enumerate_span.AddCounter("candidates", candidates.size());
  }

  // Output schema: head variables typed by their first candidate (or int).
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < head_vars.size(); ++i) {
    ValueType type = candidates.empty() ? ValueType::kInt
                                        : (candidates.begin()->first)[i].type();
    attrs.push_back({head_vars[i], type});
  }
  Relation out("answers", Schema(std::move(attrs)));

  // Fan the per-answer-tuple marginal computations out across the session
  // pool: each candidate's residual Boolean query is independent, reads
  // the database const-only, and builds all mutable state (formula
  // manager, lineage, counters) locally. Inner queries run sequentially —
  // the fan-out already saturates the pool, and nesting pools would
  // oversubscribe — but still route through the session, so repeated
  // marginals hit the result cache and all of them share the session's
  // WMC subformula cache. The caller's deadline is armed on every inner
  // query (each overrun degrades to Monte Carlo, so the batch is bounded
  // by ~candidates × deadline / threads, never a hang) and on the batch
  // context so its report records the overrun.
  std::vector<Tuple> heads;
  std::vector<size_t> node_counts;
  heads.reserve(candidates.size());
  node_counts.reserve(candidates.size());
  for (auto& [head, stat] : candidates) {
    heads.push_back(head);
    // Measured residual-lineage size: the OR root, one term per match, one
    // node per distinct uncertain tuple.
    node_counts.push_back(1 + stat.terms + stat.vars.size());
  }
  QueryOptions inner = options;
  inner.exec.num_threads = 1;

  // Schedule the largest lineages first: ParallelFor claims loop indices
  // in ascending order, so running the fan-out through a size-sorted
  // indirection makes workers start on the heaviest marginals while the
  // small ones fill the tail — one giant answer tuple no longer straggles
  // the whole batch behind a thread that picked it up last. The weight is
  // the measured lineage node count (terms + distinct uncertain tuples),
  // not the raw match count, which over-weights candidates whose matches
  // reuse the same few tuples. Ties keep candidate order, so the schedule
  // (and the output order, which follows `heads`) is deterministic.
  std::vector<size_t> schedule(heads.size());
  std::iota(schedule.begin(), schedule.end(), size_t{0});
  std::stable_sort(schedule.begin(), schedule.end(),
                   [&](size_t a, size_t b) {
                     return node_counts[a] > node_counts[b];
                   });

  std::vector<double> marginals(heads.size(), 0.0);
  std::vector<AnswerTupleInfo> infos(heads.size());
  std::vector<Status> statuses(heads.size());
  ParallelFor(&ctx, heads.size(), [&](size_t s) {
    size_t t = schedule[s];
    // Boolean residual query: substitute the head binding.
    ConjunctiveQuery grounded = cq;
    for (size_t i = 0; i < head_vars.size(); ++i) {
      grounded = grounded.Substitute(head_vars[i], heads[t][i]);
    }
    // Inner queries share the batch trace: their phase spans nest inside
    // the batch wall-time and are excluded from TopLevelNs().
    auto answer = QueryFoInternal(Ucq({grounded}).ToFo(), inner,
                                  /*top_level=*/false, trace);
    if (answer.ok()) {
      marginals[t] = answer->probability;
      infos[t].method = answer->method;
      infos[t].exact = answer->exact;
      infos[t].std_error = answer->std_error;
      infos[t].explanation = std::move(answer->explanation);
    } else {
      statuses[t] = answer.status();
    }
  });
  bool any_error = std::any_of(statuses.begin(), statuses.end(),
                               [](const Status& s) { return !s.ok(); });
  ExecReport batch_report = ctx.Report();
  if (report_out != nullptr) *report_out = batch_report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queries_served_;
    AggregateLocked(batch_report);
    tickers_.queries->Add(1);
    tickers_.query_latency_us->Record(MicrosSince(started));
    if (any_error) tickers_.query_errors->Add(1);
  }
  RetainTrace(trace, finish_trace);
  for (size_t t = 0; t < heads.size(); ++t) {
    PDB_RETURN_NOT_OK(statuses[t]);
    PDB_RETURN_NOT_OK(out.AddTuple(heads[t], marginals[t]));
  }
  if (info) *info = std::move(infos);
  return out;
}

Result<ExplainResult> Session::ExplainSql(const std::string& sql,
                                          bool analyze,
                                          const QueryOptions& options) {
  ExplainResult out;
  out.statement = sql;
  out.analyze = analyze;
  PDB_ASSIGN_OR_RETURN(CompiledSql compiled,
                       CompileSql(sql, db_->database()));
  out.boolean = compiled.boolean;
  FoPtr sentence = Ucq({compiled.cq}).ToFo();

  // Safety check = the lifted compiler itself: it either produces a
  // polynomial extensional plan (and, being polynomial, cheaply evaluates
  // it) or rejects the sentence as unsafe with the reason. This mirrors
  // exactly the routing gate in ProbDatabase::QueryFoWithContext.
  {
    auto lifted = LiftedProbabilityFo(sentence, db_->database(),
                                      options.lifted);
    if (lifted.ok()) {
      out.safe = true;
      out.safety = "safe: lifted extensional plan applies (polynomial)";
    } else if (lifted.status().code() == StatusCode::kUnsupported) {
      out.safe = false;
      out.safety = StrFormat("unsafe: %s", lifted.status().message().c_str());
    } else {
      out.safe = false;
      out.safety = lifted.status().message();
    }
  }

  // The compiled join plan: cost-based atom order with per-step
  // selectivity estimates, against the session index cache so the
  // estimates use the same cached dictionaries execution would.
  ExecContext plan_ctx;
  plan_ctx.set_index_cache(index_cache_.get());
  GroundingOptions grounding;
  grounding.exec = &plan_ctx;
  PDB_ASSIGN_OR_RETURN(
      JoinPlanProfile plan,
      PlanCqJoin(compiled.cq, db_->database(), grounding));

  if (!analyze) {
    out.method_predicted = true;
    out.method = (out.safe && options.prefer_lifted)
                     ? "lifted"
                     : "grounded-exact";
    out.plans.push_back(std::move(plan));
    return out;
  }

  // ANALYZE: execute for real, past the result cache (the point is to
  // observe execution), with a trace and a join profile on the context.
  out.method_predicted = false;
  QueryOptions effective = options;
  if (compiled.target_stderr > 0) {
    effective.monte_carlo_target_stderr = compiled.target_stderr;
  }
  auto trace = std::make_shared<QueryTrace>();
  JoinProfile profile;
  if (compiled.boolean) {
    PDB_ASSIGN_OR_RETURN(
        QueryAnswer answer,
        QueryFoInternal(sentence, effective, /*top_level=*/true, trace,
                        /*finish_trace=*/true, &profile,
                        /*bypass_cache=*/true));
    out.method = InferenceMethodToString(answer.method);
    out.probability = answer.probability;
    out.exact = answer.exact;
    out.std_error = answer.std_error;
    out.explanation = answer.explanation;
    out.report = answer.report;
  } else {
    std::vector<AnswerTupleInfo> infos;
    PDB_ASSIGN_OR_RETURN(
        Relation answers,
        QueryWithAnswersTraced(compiled.cq, compiled.head_vars, effective,
                               &infos, trace, /*finish_trace=*/true,
                               &profile, &out.report));
    out.answer_tuples = answers.size();
    out.exact = !infos.empty();
    for (const AnswerTupleInfo& info : infos) {
      const char* m = InferenceMethodToString(info.method);
      if (out.method.empty()) {
        out.method = m;
      } else if (out.method != m) {
        out.method = "mixed";
      }
      out.exact = out.exact && info.exact;
    }
    if (out.method.empty()) out.method = "none (no answer candidates)";
  }
  out.executed = true;
  out.trace = TraceData::FromTrace(*trace);
  // Executed plans (candidate sweep / grounding / Monte Carlo re-ground).
  // A lifted answer grounds nothing: keep the plan-only compile so the
  // atom-order table is still shown.
  out.plans = profile.plans();
  if (out.plans.empty()) out.plans.push_back(std::move(plan));
  return out;
}

}  // namespace pdb
