#include "core/session.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <utility>

#include "boolean/lineage.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

namespace {

/// Resolves SessionOptions::num_threads (0 = one per hardware thread).
int ResolveThreads(int num_threads) {
  if (num_threads <= 0) {
    return static_cast<int>(ThreadPool::HardwareThreads());
  }
  return num_threads;
}

}  // namespace

Session::Session(const ProbDatabase* db, SessionOptions options)
    : db_(db),
      options_(options),
      resolved_threads_(ResolveThreads(options.num_threads)),
      generation_seen_(db->generation()) {
  cumulative_.num_threads = resolved_threads_;
  if (options_.share_wmc_cache) {
    WmcCacheOptions cache_options;
    cache_options.num_shards = options_.wmc_cache_shards;
    cache_options.max_bytes = options_.wmc_cache_bytes;
    wmc_cache_ = std::make_unique<WmcCache>(cache_options);
  }
}

Session::~Session() = default;  // pool destructor drains + joins

ThreadPool* Session::pool() {
  if (resolved_threads_ <= 1) return nullptr;
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(resolved_threads_));
  });
  return pool_.get();
}

void Session::InvalidateCache() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
    lru_.clear();
  }
  if (wmc_cache_) wmc_cache_->Clear();
}

void Session::RefreshGenerationLocked(uint64_t current_generation) {
  if (current_generation == generation_seen_) return;
  // The database mutated since this session last looked: drop the result
  // cache (its answers may be stale) and the shared WMC cache (its entries
  // stay value-correct thanks to the weight fingerprints, but they key
  // lineages of the previous database and would only waste the budget).
  cache_.clear();
  lru_.clear();
  if (wmc_cache_) wmc_cache_->Clear();
  generation_seen_ = current_generation;
}

const QueryAnswer* Session::CacheLookupLocked(const std::string& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  // Refresh recency: splice the key to the front of the LRU list.
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return &it->second.answer;
}

void Session::CacheInsertLocked(std::string key, QueryAnswer answer) {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A concurrent query answered the same key first; keep the existing
    // entry (the answers are identical) and just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  while (cache_.size() >= options_.max_cache_entries && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  if (options_.max_cache_entries == 0) return;
  lru_.push_front(key);
  cache_.emplace(std::move(key),
                 ResultEntry{std::move(answer), lru_.begin()});
}

size_t Session::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

uint64_t Session::queries_served() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_served_;
}

uint64_t Session::result_cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return result_cache_hits_;
}

WmcCacheStats Session::wmc_cache_stats() const {
  return wmc_cache_ ? wmc_cache_->stats() : WmcCacheStats{};
}

ExecReport Session::CumulativeReport() const {
  ExecReport report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    report = cumulative_;
  }
  if (wmc_cache_) {
    WmcCacheStats stats = wmc_cache_->stats();
    report.wmc_shared_inserts = stats.inserts;
    report.wmc_shared_evictions = stats.evictions;
    report.wmc_shared_bytes = stats.bytes;
  }
  return report;
}

void Session::AggregateLocked(const ExecReport& report) {
  cumulative_.tasks_run += report.tasks_run;
  cumulative_.samples_drawn += report.samples_drawn;
  cumulative_.cache_hits += report.cache_hits;
  cumulative_.wmc_shared_hits += report.wmc_shared_hits;
  cumulative_.wmc_shared_misses += report.wmc_shared_misses;
  cumulative_.cancelled = cumulative_.cancelled || report.cancelled;
  cumulative_.deadline_exceeded =
      cumulative_.deadline_exceeded || report.deadline_exceeded;
}

std::string Session::CacheKey(const FoPtr& sentence,
                              const QueryOptions& options) {
  // Only exact answers are cached, so the key covers every option that can
  // shape an exact answer's value *or* metadata (method/explanation/bounds):
  // the lifted preference, the DPLL decision budget, the Monte Carlo
  // fallback toggle, and the lifted-engine knobs that decide whether lifted
  // inference succeeds (and hence which engine is reported). Thread counts,
  // deadlines, and sampling parameters cannot change an exact answer. One
  // caveat: LiftedOptions::trace is a side channel — a cache hit skips the
  // derivation log the first execution would have appended.
  return StrFormat("%d|%llu|%d|%d|%llu|%llu|", options.prefer_lifted ? 1 : 0,
                   static_cast<unsigned long long>(
                       options.max_dpll_decisions),
                   options.allow_monte_carlo ? 1 : 0,
                   options.lifted.use_inclusion_exclusion ? 1 : 0,
                   static_cast<unsigned long long>(
                       options.lifted.max_ie_subsets),
                   static_cast<unsigned long long>(
                       options.lifted.max_depth)) +
         sentence->ToString();
}

Result<QueryAnswer> Session::Query(const std::string& query_text,
                                   const QueryOptions& options) {
  PDB_ASSIGN_OR_RETURN(FoPtr sentence, ParseBooleanQuery(query_text));
  return QueryFo(sentence, options);
}

Result<QueryAnswer> Session::QueryFo(const FoPtr& sentence,
                                     const QueryOptions& options) {
  return QueryFoInternal(sentence, options, /*top_level=*/true);
}

Result<QueryAnswer> Session::QueryFoInternal(const FoPtr& sentence,
                                             const QueryOptions& options,
                                             bool top_level) {
  std::string key;
  if (options_.cache_results) key = CacheKey(sentence, options);
  // Generation snapshot at query start: an answer may only be cached if
  // the database is still on this generation when the query finishes (see
  // the insert below). The snapshot also invalidates both caches lazily:
  // the first query after a mutation drops every stale entry.
  uint64_t generation_at_start = db_->generation();
  {
    std::lock_guard<std::mutex> lock(mu_);
    RefreshGenerationLocked(generation_at_start);
    if (options_.cache_results) {
      if (const QueryAnswer* cached = CacheLookupLocked(key)) {
        if (top_level) {
          ++queries_served_;
          ++result_cache_hits_;
        }
        QueryAnswer answer = *cached;
        // A cached answer executed nothing in this query: hand back a fresh
        // report so per-query accounting stays isolated.
        answer.report = ExecReport{};
        answer.explanation += "; session result cache hit";
        return answer;
      }
    }
  }

  // Each query gets a private context (isolated counters, own deadline)
  // over the shared session pool and the session-shared WMC cache. A query
  // that asks for sequential execution gets no pool but still shares the
  // cache.
  ExecContext ctx(options.exec.num_threads == 1 ? nullptr : pool());
  ctx.set_wmc_cache(wmc_cache_.get());
  if (options.exec.deadline_ms > 0) ctx.SetDeadline(options.exec.deadline_ms);
  auto answer = db_->QueryFoWithContext(sentence, options, &ctx);
  ExecReport report = ctx.Report();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (top_level) ++queries_served_;
    AggregateLocked(report);
    // Cache only if the database never mutated while this query ran: the
    // current generation must equal the snapshot taken at query start (a
    // `== generation_seen_` check alone races — a concurrent query could
    // advance generation_seen_ to a post-mutation generation and make this
    // stale answer look fresh).
    if (answer.ok() && options_.cache_results && answer->exact &&
        db_->generation() == generation_at_start &&
        generation_at_start == generation_seen_) {
      QueryAnswer cached = *answer;
      cached.report = report;
      CacheInsertLocked(std::move(key), std::move(cached));
    }
  }
  if (answer.ok()) answer->report = report;
  return answer;
}

Result<Relation> Session::QueryWithAnswers(
    const ConjunctiveQuery& cq, const std::vector<std::string>& head_vars,
    const QueryOptions& options) {
  const Database& db = db_->database();
  std::set<std::string> vars = cq.Variables();
  for (const std::string& v : head_vars) {
    if (vars.count(v) == 0) {
      return Status::InvalidArgument(
          StrFormat("head variable '%s' does not occur in the query",
                    v.c_str()));
    }
  }
  // Candidate answers: distinct head-tuple bindings among the CQ matches,
  // each with its match count — the number of DNF terms of the candidate's
  // residual lineage, i.e. a byte-free estimate of how much work its
  // marginal will take.
  std::map<Tuple, size_t> candidates;
  // Map head var -> (atom index, position) for extraction.
  std::vector<std::pair<size_t, size_t>> positions;
  for (const std::string& v : head_vars) {
    bool found = false;
    for (size_t i = 0; i < cq.atoms().size() && !found; ++i) {
      const Atom& atom = cq.atoms()[i];
      for (size_t j = 0; j < atom.args.size(); ++j) {
        if (atom.args[j].is_variable() && atom.args[j].var() == v) {
          positions.emplace_back(i, j);
          found = true;
          break;
        }
      }
    }
    PDB_CHECK(found);  // verified above: every head var occurs somewhere
  }
  PDB_RETURN_NOT_OK(EnumerateCqMatches(cq, db, [&](const CqMatch& match) {
    Tuple head;
    head.reserve(positions.size());
    for (const auto& [atom_idx, pos] : positions) {
      const LineageVar& lv = match.atom_rows[atom_idx];
      const Relation* rel = db.Get(lv.relation).value();
      head.push_back(rel->tuple(lv.row)[pos]);
    }
    ++candidates[std::move(head)];
  }));

  // Output schema: head variables typed by their first candidate (or int).
  std::vector<Attribute> attrs;
  for (size_t i = 0; i < head_vars.size(); ++i) {
    ValueType type = candidates.empty() ? ValueType::kInt
                                        : (candidates.begin()->first)[i].type();
    attrs.push_back({head_vars[i], type});
  }
  Relation out("answers", Schema(std::move(attrs)));

  // Fan the per-answer-tuple marginal computations out across the session
  // pool: each candidate's residual Boolean query is independent, reads
  // the database const-only, and builds all mutable state (formula
  // manager, lineage, counters) locally. Inner queries run sequentially —
  // the fan-out already saturates the pool, and nesting pools would
  // oversubscribe — but still route through the session, so repeated
  // marginals hit the result cache and all of them share the session's
  // WMC subformula cache. The caller's deadline is armed on every inner
  // query (each overrun degrades to Monte Carlo, so the batch is bounded
  // by ~candidates × deadline / threads, never a hang) and on the batch
  // context so its report records the overrun.
  std::vector<Tuple> heads;
  std::vector<size_t> match_counts;
  heads.reserve(candidates.size());
  match_counts.reserve(candidates.size());
  for (auto& [head, count] : candidates) {
    heads.push_back(head);
    match_counts.push_back(count);
  }
  QueryOptions inner = options;
  inner.exec.num_threads = 1;

  // Schedule the largest lineages first: ParallelFor claims loop indices
  // in ascending order, so running the fan-out through a size-sorted
  // indirection makes workers start on the heaviest marginals while the
  // small ones fill the tail — one giant answer tuple no longer straggles
  // the whole batch behind a thread that picked it up last. Ties keep
  // candidate order, so the schedule (and the output order, which follows
  // `heads`) is deterministic.
  std::vector<size_t> schedule(heads.size());
  std::iota(schedule.begin(), schedule.end(), size_t{0});
  std::stable_sort(schedule.begin(), schedule.end(),
                   [&](size_t a, size_t b) {
                     return match_counts[a] > match_counts[b];
                   });

  ExecContext ctx(options.exec.num_threads == 1 ? nullptr : pool());
  ctx.set_wmc_cache(wmc_cache_.get());
  if (options.exec.deadline_ms > 0) ctx.SetDeadline(options.exec.deadline_ms);
  std::vector<double> marginals(heads.size(), 0.0);
  std::vector<Status> statuses(heads.size());
  ParallelFor(&ctx, heads.size(), [&](size_t s) {
    size_t t = schedule[s];
    // Boolean residual query: substitute the head binding.
    ConjunctiveQuery grounded = cq;
    for (size_t i = 0; i < head_vars.size(); ++i) {
      grounded = grounded.Substitute(head_vars[i], heads[t][i]);
    }
    auto answer =
        QueryFoInternal(Ucq({grounded}).ToFo(), inner, /*top_level=*/false);
    if (answer.ok()) {
      marginals[t] = answer->probability;
    } else {
      statuses[t] = answer.status();
    }
  });
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queries_served_;
    AggregateLocked(ctx.Report());
  }
  for (size_t t = 0; t < heads.size(); ++t) {
    PDB_RETURN_NOT_OK(statuses[t]);
    PDB_RETURN_NOT_OK(out.AddTuple(heads[t], marginals[t]));
  }
  return out;
}

}  // namespace pdb
