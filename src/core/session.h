/// \file session.h
/// \brief Long-lived query session: shared worker pool, cross-query result
/// cache, per-session accounting.
///
/// A `Session` is the unit of concurrency for serving queries: it owns one
/// `ThreadPool` (created lazily, shared by every query issued through the
/// session) and a result cache keyed by query sentence, so N concurrent
/// `Query()` calls share workers instead of each spinning up a pool and
/// oversubscribing the machine. All entry points are thread-safe: issue
/// queries from as many threads as you like against one session.
///
/// Lifecycle:
///  - construction binds the session to a `ProbDatabase` and resolves the
///    pool width; no threads are spawned until the first parallel query;
///  - each query runs against its own `ExecContext` (private counters, own
///    deadline), so per-query `ExecReport`s are isolated even under heavy
///    concurrency, while `CumulativeReport()` aggregates across them;
///  - exact answers are cached by (sentence, relevant options); the cache
///    is invalidated when the database's mutation generation changes
///    (`ProbDatabase::AddRelation` bumps it; direct mutation through
///    `database()` requires `BumpGeneration()` or `InvalidateCache()`);
///  - destruction drains and joins the pool. The session must outlive any
///    in-flight queries issued through it.
///
/// The `ProbDatabase::Query*` methods remain as thin wrappers creating a
/// private single-shot session per call, which reproduces the historical
/// pool-per-query behaviour exactly.

#ifndef PDB_CORE_SESSION_H_
#define PDB_CORE_SESSION_H_

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/pdb.h"
#include "exec/context.h"
#include "exec/join_profile.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/explain.h"
#include "storage/index_cache.h"
#include "wmc/wmc_cache.h"

namespace pdb {

class ThreadPool;

/// Tuning for a session.
struct SessionOptions {
  /// Worker-pool width shared by every query issued through the session:
  /// 1 = sequential (no pool), 0 = one worker per hardware thread. A
  /// query's own `exec.num_threads == 1` still forces that query to run
  /// sequentially; any other value uses the session pool at this width.
  int num_threads = 0;
  /// Cache exact answers across queries (keyed by sentence + the options
  /// that can change the answer).
  bool cache_results = true;
  /// Capacity of the result cache; least-recently-used entries are evicted
  /// once it is reached, so hot queries stay cached for the session's
  /// lifetime no matter how many one-off queries pass through.
  size_t max_cache_entries = 4096;
  /// Share one cross-query WMC subformula cache (wmc/wmc_cache.h) across
  /// every DPLL run issued through the session — including the per-tuple
  /// fan-out of QueryWithAnswers and parallel component children, which
  /// otherwise each re-solve near-identical lineages from scratch.
  bool share_wmc_cache = true;
  /// Byte budget of the shared WMC cache (per-shard CLOCK eviction).
  size_t wmc_cache_bytes = size_t{64} << 20;
  /// Shard (mutex stripe) count of the shared WMC cache.
  size_t wmc_cache_shards = 16;
  /// Use this externally owned WMC cache instead of constructing a private
  /// one (ignored unless `share_wmc_cache` is set). This is how pdbd gives
  /// every pooled per-client session one process-wide cache — which is
  /// also the cache the durable layer spills to and reloads from disk on a
  /// warm restart. Safe to share across sessions and databases: cache keys
  /// are pure functions of (formula structure, weights), so an entry can
  /// never serve a mismatched lookup (see wmc/wmc_cache.h).
  std::shared_ptr<WmcCache> external_wmc_cache = nullptr;
  /// How many finished query traces `recent_traces()` retains (oldest
  /// evicted first). Only queries run with `QueryOptions::trace` enter the
  /// ring.
  size_t trace_ring_size = 32;
  /// Share one join-index cache (storage/index_cache.h) across every CQ
  /// grounding issued through the session, so repeated queries (and the
  /// per-tuple fan-out of QueryWithAnswers) reuse hash indexes, columnar
  /// relation images, and columnar code indexes instead of rebuilding
  /// them per grounding. Invalidated with the result cache when the
  /// database generation moves (which also detaches stale columnar
  /// entries — the relations themselves re-encode lazily).
  bool cache_indexes = true;
  /// Shard (mutex stripe) count of the shared index cache.
  size_t index_cache_shards = 8;
};

/// A long-lived, thread-safe query session over one `ProbDatabase`.
class Session {
 public:
  /// Binds to `db`, which must outlive the session.
  explicit Session(const ProbDatabase* db, SessionOptions options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and evaluates a Boolean query (same syntax as
  /// `ProbDatabase::Query`).
  Result<QueryAnswer> Query(const std::string& query_text,
                            const QueryOptions& options = {});

  /// Evaluates a Boolean FO sentence.
  Result<QueryAnswer> QueryFo(const FoPtr& sentence,
                              const QueryOptions& options = {});

  /// Non-Boolean conjunctive query: answer tuples with marginal
  /// probabilities; the per-tuple fan-out runs on the session pool and the
  /// per-tuple Boolean sub-queries can hit the session result cache. When
  /// `info` is non-null it receives one `AnswerTupleInfo` per output row.
  Result<Relation> QueryWithAnswers(const ConjunctiveQuery& cq,
                                    const std::vector<std::string>& head_vars,
                                    const QueryOptions& options = {},
                                    std::vector<AnswerTupleInfo>* info =
                                        nullptr);

  /// Evaluates "SELECT PROB() FROM ... WHERE ... [WITH STDERR s]"
  /// (sql/sql.h). A WITH STDERR clause sets the adaptive Monte Carlo
  /// target standard error for this statement, overriding
  /// `QueryOptions::monte_carlo_target_stderr`.
  Result<QueryAnswer> QuerySqlBoolean(const std::string& sql,
                                      const QueryOptions& options = {});

  /// Evaluates a column-select SQL statement: answer tuples with
  /// marginals; `info` as in QueryWithAnswers.
  Result<Relation> QuerySqlAnswers(const std::string& sql,
                                   const QueryOptions& options = {},
                                   std::vector<AnswerTupleInfo>* info =
                                       nullptr);

  /// As Query / QuerySqlBoolean / QuerySqlAnswers, but recording into a
  /// caller-provided trace: the server threads one trace per HTTP request
  /// through these so transport spans (http_parse, admission_wait,
  /// http_respond) and engine spans land on one timeline. The trace is
  /// retained in the ring but NOT finished — the caller records its
  /// trailing spans and calls `trace->Finish()` itself. A null trace makes
  /// these identical to the untraced entry points.
  Result<QueryAnswer> QueryTraced(const std::string& query_text,
                                  const QueryOptions& options,
                                  std::shared_ptr<QueryTrace> trace);
  Result<QueryAnswer> QuerySqlBooleanTraced(const std::string& sql,
                                            const QueryOptions& options,
                                            std::shared_ptr<QueryTrace> trace);
  Result<Relation> QuerySqlAnswersTraced(const std::string& sql,
                                         const QueryOptions& options,
                                         std::vector<AnswerTupleInfo>* info,
                                         std::shared_ptr<QueryTrace> trace);

  /// EXPLAIN [ANALYZE] <sql>: compiles the statement, runs the safety
  /// check (the lifted compiler either produces a polynomial extensional
  /// plan or rejects the query as unsafe), and reports the cost-based join
  /// plan with its per-step selectivity estimates. With `analyze` the
  /// statement actually executes — bypassing the result cache, since the
  /// point is to observe execution — and the result carries the actual
  /// per-step match counts beside the estimates, the answer, the
  /// `ExecReport` counters, and the full per-phase trace. `sql` must not
  /// carry the EXPLAIN prefix itself (see `StripExplainPrefix`,
  /// sql/sql.h).
  Result<ExplainResult> ExplainSql(const std::string& sql, bool analyze,
                                   const QueryOptions& options = {});

  /// Resolved pool width (>= 1).
  int num_threads() const { return resolved_threads_; }

  /// The shared pool, constructed on first use; null when the session is
  /// sequential (`num_threads() == 1`).
  ThreadPool* pool();

  /// Drops every cached result and every shared WMC cache entry (e.g.
  /// after mutating the database through `ProbDatabase::database()`).
  void InvalidateCache();

  /// Requests a cooperative stop of every query currently executing through
  /// this session (top-level and per-tuple fan-out alike). In-flight
  /// queries observe the cancel at their next `ShouldStop()` poll and
  /// return with `report.cancelled`; queries issued after this call run
  /// normally. This is the server's straggler hammer for graceful
  /// shutdown: drain first, cancel whatever is left.
  void CancelInFlight();

  /// Top-level queries currently executing (the `pdb_requests_in_flight`
  /// gauge).
  int64_t requests_in_flight() const;

  /// Counts one server-side admission drop (a request shed with 429 before
  /// any engine work ran) into this session's cumulative report and the
  /// `pdb_admission_rejected_total` / `pdb_shed_total` tickers, under the
  /// same lock as every other fold so ticker == CumulativeReport holds.
  void NoteAdmissionRejected();

  size_t cache_size() const;
  /// Top-level queries answered by this session (cache hits included).
  uint64_t queries_served() const;
  /// Top-level queries answered from the result cache.
  uint64_t result_cache_hits() const;

  /// The session's cross-query WMC cache, or null when
  /// `SessionOptions::share_wmc_cache` is off.
  WmcCache* wmc_cache() { return wmc_cache_.get(); }
  /// Aggregated counters of the shared WMC cache (zeros when disabled).
  WmcCacheStats wmc_cache_stats() const;

  /// The session's shared join-index cache, or null when
  /// `SessionOptions::cache_indexes` is off.
  IndexCache* index_cache() { return index_cache_.get(); }
  /// Aggregated counters of the shared index cache (zeros when disabled).
  IndexCacheStats index_cache_stats() const;

  /// Aggregate of every per-query report (tasks, samples, DPLL cache hits,
  /// shared WMC cache hits, whether any query was cancelled or overran a
  /// deadline), plus the shared cache's insert/eviction/size counters.
  ExecReport CumulativeReport() const;

  /// The session's metrics registry. Engine tickers (pdb_queries_total,
  /// pdb_dpll_decisions_total, pdb_query_latency_us, ...) live here;
  /// callers may mint additional metrics through the same registry.
  MetricsRegistry& metrics() { return metrics_; }

  /// Point-in-time copy of every metric, with the shared-cache and
  /// result-cache level gauges refreshed first.
  MetricsSnapshot SnapshotMetrics() const;
  /// Prometheus text exposition of `SnapshotMetrics()`.
  std::string MetricsText() const;
  /// JSON rendering of `SnapshotMetrics()`.
  std::string MetricsJson() const;

  /// The most recent finished traces (newest first), at most
  /// `SessionOptions::trace_ring_size` of them.
  std::vector<std::shared_ptr<const QueryTrace>> recent_traces() const;

 private:
  /// Shared pipeline behind Query/QueryFo and the per-tuple fan-out.
  /// `top_level` controls accounting: fan-out sub-queries aggregate into
  /// the cumulative report but do not count as served queries (and do not
  /// finish or retain `trace` — they only add spans to it).
  /// `finish_trace` is false for the *Traced entry points, whose caller
  /// finishes the trace after its own trailing spans. `profile` (EXPLAIN
  /// ANALYZE) rides on the execution context like the trace does, and
  /// `bypass_cache` forces execution past the result cache.
  Result<QueryAnswer> QueryFoInternal(const FoPtr& sentence,
                                      const QueryOptions& options,
                                      bool top_level,
                                      std::shared_ptr<QueryTrace> trace,
                                      bool finish_trace = true,
                                      JoinProfile* profile = nullptr,
                                      bool bypass_cache = false);

  /// Query against a caller-provided trace (parse span + QueryFoInternal).
  Result<QueryAnswer> QueryInternal(const std::string& query_text,
                                    const QueryOptions& options,
                                    std::shared_ptr<QueryTrace> trace,
                                    bool finish_trace);

  /// QuerySql* against a caller-provided trace (compile span + dispatch).
  Result<QueryAnswer> QuerySqlBooleanInternal(const std::string& sql,
                                              const QueryOptions& options,
                                              std::shared_ptr<QueryTrace> trace,
                                              bool finish_trace);
  Result<Relation> QuerySqlAnswersInternal(const std::string& sql,
                                           const QueryOptions& options,
                                           std::vector<AnswerTupleInfo>* info,
                                           std::shared_ptr<QueryTrace> trace,
                                           bool finish_trace);

  /// QueryWithAnswers against a caller-provided trace (the SQL wrapper
  /// passes the trace holding its compile span). `report_out`, when
  /// non-null, receives the batch context's counters (EXPLAIN ANALYZE).
  Result<Relation> QueryWithAnswersTraced(
      const ConjunctiveQuery& cq, const std::vector<std::string>& head_vars,
      const QueryOptions& options, std::vector<AnswerTupleInfo>* info,
      std::shared_ptr<QueryTrace> trace, bool finish_trace = true,
      JoinProfile* profile = nullptr, ExecReport* report_out = nullptr);

  /// A fresh trace when `options.trace` asks for one, else null.
  std::shared_ptr<QueryTrace> MakeTrace(const QueryOptions& options) const {
    return options.trace ? std::make_shared<QueryTrace>() : nullptr;
  }

  /// Pushes `trace` into the ring buffer, finishing it first unless the
  /// caller keeps recording (the *Traced entry points add transport spans
  /// after the engine returns). No-op on null.
  void RetainTrace(const std::shared_ptr<QueryTrace>& trace,
                   bool finish = true);

  /// Cache key: the options that can change an exact answer, then the
  /// sentence text.
  static std::string CacheKey(const FoPtr& sentence,
                              const QueryOptions& options);

  /// Folds one per-query report into the cumulative aggregate. Caller must
  /// hold `mu_`.
  void AggregateLocked(const ExecReport& report);

  /// Drops stale caches if the database generation moved past the snapshot
  /// this session last saw. Caller must hold `mu_`.
  void RefreshGenerationLocked(uint64_t current_generation);

  /// One result-cache entry plus its position in the LRU recency list.
  struct ResultEntry {
    QueryAnswer answer;
    std::list<std::string>::iterator lru_pos;
  };

  /// Looks up `key`, refreshing recency. Caller must hold `mu_`.
  const QueryAnswer* CacheLookupLocked(const std::string& key);
  /// Inserts under `key`, evicting the least-recently-used entry when at
  /// capacity. Caller must hold `mu_`.
  void CacheInsertLocked(std::string key, QueryAnswer answer);

  /// Registry tickers resolved once at construction (stable pointers, so
  /// the per-query fold is a handful of relaxed atomic adds, no map
  /// lookups). Counters mirror `cumulative_` field for field; the
  /// wmc_shared_* overlay counters and the level gauges are refreshed from
  /// their sources of truth by `SnapshotMetrics()`.
  struct Tickers {
    Counter* queries;
    Counter* query_errors;
    Counter* result_cache_hits;
    Counter* result_cache_misses;
    Counter* result_cache_evictions;
    Counter* queries_lifted;
    Counter* queries_grounded_exact;
    Counter* queries_monte_carlo;
    Counter* queries_plan_bounds;
    Counter* deadline_exceeded;
    Counter* queries_cancelled;
    Counter* exec_tasks;
    Counter* mc_samples;
    Counter* mc_batches;
    Counter* dpll_decisions;
    Counter* dpll_cache_hits;
    Counter* dpll_component_splits;
    Counter* dpll_parallel_splits;
    Counter* wmc_shared_hits;
    Counter* wmc_shared_misses;
    Counter* wmc_shared_inserts;    // overlay: Set() from WmcCacheStats
    Counter* wmc_shared_evictions;  // overlay: Set() from WmcCacheStats
    Counter* lineage_matches;
    Counter* lineage_nodes;
    Counter* index_builds;
    Counter* index_cache_hits;
    /// All load shed: inline-degraded pool tasks + admission drops
    /// (invariant: == cumulative shed_tasks + admission_rejected).
    Counter* shed;
    Counter* admission_rejected;
    Gauge* sessions_active;      ///< 1 while this session lives
    Gauge* requests_in_flight;   ///< top-level queries currently executing
    Gauge* wmc_shared_bytes;
    Gauge* wmc_shared_entries;
    Gauge* result_cache_entries;
    Gauge* index_cache_entries;
    Histogram* query_latency_us;
    Histogram* sql_statement_latency_us;
  };

  /// Counts one answered top-level query into the tickers. Caller must
  /// hold `mu_` (only for consistency with the queries_served_ bump next
  /// to it; the tickers themselves are atomic).
  void TickTopLevelLocked(const Result<QueryAnswer>& answer,
                          uint64_t latency_us);

  const ProbDatabase* db_;
  SessionOptions options_;
  int resolved_threads_;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
  /// Internally sharded and thread-safe; not guarded by mu_. Shared when
  /// `SessionOptions::external_wmc_cache` was supplied, private otherwise.
  std::shared_ptr<WmcCache> wmc_cache_;
  /// Internally sharded and thread-safe; not guarded by mu_.
  std::unique_ptr<IndexCache> index_cache_;
  /// Thread-safe (atomics inside; its own mutex for creation).
  MetricsRegistry metrics_;
  Tickers tickers_;

  mutable std::mutex mu_;
  uint64_t generation_seen_;                          // guarded by mu_
  std::unordered_map<std::string, ResultEntry> cache_;  // guarded by mu_
  /// Recency order of cache_ keys, most recent first.   Guarded by mu_.
  std::list<std::string> lru_;
  uint64_t queries_served_ = 0;                       // guarded by mu_
  uint64_t result_cache_hits_ = 0;                    // guarded by mu_
  ExecReport cumulative_;                             // guarded by mu_
  /// Ring buffer of recent finished traces, newest at the front.
  std::deque<std::shared_ptr<const QueryTrace>> traces_;  // guarded by mu_
  /// Execution contexts of in-flight queries (top-level and fan-out
  /// children), registered for CancelInFlight(). Guarded by mu_; each
  /// context outlives its registration (stack-held by the query until it
  /// unregisters).
  std::unordered_set<ExecContext*> live_contexts_;  // guarded by mu_
  int64_t top_level_in_flight_ = 0;                 // guarded by mu_

  friend class InFlightGuard;
};

}  // namespace pdb

#endif  // PDB_CORE_SESSION_H_
