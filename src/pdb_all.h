/// \file pdb_all.h
/// \brief Umbrella header: includes the whole public API.
///
/// Convenience for downstream users; individual components remain
/// includable on their own (and the library targets are per-subsystem, so
/// linking only what you use stays possible).

#ifndef PDB_PDB_ALL_H_
#define PDB_PDB_ALL_H_

// Substrate.
#include "util/big_int.h"       // IWYU pragma: export
#include "util/check.h"         // IWYU pragma: export
#include "util/random.h"        // IWYU pragma: export
#include "util/rational.h"      // IWYU pragma: export
#include "util/scaled_float.h"  // IWYU pragma: export
#include "util/status.h"        // IWYU pragma: export

// Execution runtime.
#include "exec/context.h"      // IWYU pragma: export
#include "exec/parallel.h"     // IWYU pragma: export
#include "exec/thread_pool.h"  // IWYU pragma: export

// Observability.
#include "obs/metrics.h"  // IWYU pragma: export
#include "obs/trace.h"    // IWYU pragma: export

// Storage.
#include "storage/csv.h"       // IWYU pragma: export
#include "storage/database.h"  // IWYU pragma: export
#include "storage/relation.h"  // IWYU pragma: export

// Logic.
#include "logic/analysis.h"     // IWYU pragma: export
#include "logic/containment.h"  // IWYU pragma: export
#include "logic/cq.h"           // IWYU pragma: export
#include "logic/fo.h"           // IWYU pragma: export
#include "logic/parser.h"       // IWYU pragma: export

// Lineage + grounded inference.
#include "boolean/formula.h"  // IWYU pragma: export
#include "boolean/lineage.h"  // IWYU pragma: export
#include "wmc/dpll.h"         // IWYU pragma: export
#include "wmc/enumeration.h"  // IWYU pragma: export
#include "wmc/montecarlo.h"   // IWYU pragma: export
#include "wmc/weights.h"      // IWYU pragma: export

// Knowledge compilation.
#include "kc/circuit.h"         // IWYU pragma: export
#include "kc/obdd.h"            // IWYU pragma: export
#include "kc/order.h"           // IWYU pragma: export
#include "kc/trace_compiler.h"  // IWYU pragma: export

// Lifted inference + plans.
#include "lifted/lifted.h"     // IWYU pragma: export
#include "lifted/safety.h"     // IWYU pragma: export
#include "plans/bounds.h"      // IWYU pragma: export
#include "plans/enumerate.h"   // IWYU pragma: export
#include "plans/plan.h"        // IWYU pragma: export

// Correlations, symmetry, and other data models.
#include "bid/bid.h"                  // IWYU pragma: export
#include "incomplete/incomplete.h"    // IWYU pragma: export
#include "mln/mln.h"                  // IWYU pragma: export
#include "mln/translate.h"            // IWYU pragma: export
#include "openworld/openworld.h"      // IWYU pragma: export
#include "symmetric/fo2.h"            // IWYU pragma: export
#include "symmetric/symmetric.h"      // IWYU pragma: export

// Frontends and the engine facade.
#include "core/pdb.h"      // IWYU pragma: export
#include "core/session.h"  // IWYU pragma: export
#include "sql/sql.h"       // IWYU pragma: export

#endif  // PDB_PDB_ALL_H_
