/// \file check.h
/// \brief Invariant-checking macros for programmer errors.
///
/// PDB_CHECK aborts on violated invariants (always on, including release
/// builds — the cost is negligible next to inference work and database bugs
/// are far cheaper caught loudly). PDB_DCHECK compiles out in NDEBUG builds.
/// PDB_ASSERT is for checks too expensive for production (component
/// disjointness sweeps, clone-order verification): it is compiled in only
/// when the build sets -DPDB_ASSERTIONS=ON (see the top-level CMake option),
/// which CI exercises in a dedicated Debug job.

#ifndef PDB_UTIL_CHECK_H_
#define PDB_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace pdb::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "PDB_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace pdb::internal

#define PDB_CHECK(cond)                                         \
  do {                                                          \
    if (!(cond)) {                                              \
      ::pdb::internal::CheckFailed(__FILE__, __LINE__, #cond);  \
    }                                                           \
  } while (false)

#ifdef NDEBUG
#define PDB_DCHECK(cond) \
  do {                   \
  } while (false)
#else
#define PDB_DCHECK(cond) PDB_CHECK(cond)
#endif

#ifdef PDB_ASSERTIONS
#define PDB_ASSERT(cond) PDB_CHECK(cond)
#else
#define PDB_ASSERT(cond) \
  do {                   \
  } while (false)
#endif

#endif  // PDB_UTIL_CHECK_H_
