/// \file random.h
/// \brief Deterministic pseudo-random number generation for tests, Monte
/// Carlo estimators and workload generators.
///
/// A thin wrapper over xoshiro256**, seeded explicitly so every experiment is
/// reproducible bit-for-bit across runs and platforms.

#ifndef PDB_UTIL_RANDOM_H_
#define PDB_UTIL_RANDOM_H_

#include <cstdint>

namespace pdb {

/// Deterministic 64-bit PRNG (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p);

  /// Derives the deterministic substream `stream` from the generator's
  /// current state without advancing it: Split(i) always returns the same
  /// generator, and different indices yield statistically independent
  /// streams. This is the basis for thread-count-invariant parallel
  /// sampling — shard s of a Monte Carlo run always draws from Split(s),
  /// regardless of which worker executes it.
  Rng Split(uint64_t stream) const;

 private:
  uint64_t s_[4];
};

}  // namespace pdb

#endif  // PDB_UTIL_RANDOM_H_
