/// \file status.h
/// \brief Error handling primitives: `Status` and `Result<T>`.
///
/// Fallible public APIs in pdb return `Status` (or `Result<T>` when they
/// produce a value) instead of throwing exceptions, following the idiom of
/// production database codebases (Arrow, RocksDB, LevelDB). Programmer errors
/// (broken invariants) abort via the PDB_CHECK macros in check.h.

#ifndef PDB_UTIL_STATUS_H_
#define PDB_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace pdb {

/// Machine-readable category of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (bad query text, bad schema, ...)
  kNotFound,          ///< a named entity (relation, attribute) is missing
  kOutOfRange,        ///< numeric value outside the legal range
  kUnsupported,       ///< legal input outside the scope of the algorithm
  kFailedPrecondition,///< call sequence violated (e.g. executing unbound plan)
  kResourceExhausted, ///< configured limit (nodes, time, memory) exceeded
  kDeadlineExceeded,  ///< wall-clock deadline passed before completion
  kIoError,           ///< a filesystem operation failed (or was injected)
  kCorruption,        ///< stored data failed its checksum or framing check
  kInternal,          ///< bug: should never be surfaced to users
};

/// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// An error code plus message. Cheap to move; `ok()` is the common case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error `Status`. Never both.
template <typename T>
class Result {
 public:
  /// Implicit from a value (the success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Value accessors. Undefined behaviour when !ok() (checked in debug).
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK when a value is held
};

/// Propagates a non-OK Status from an expression, like Arrow's macro.
#define PDB_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::pdb::Status _pdb_status = (expr);        \
    if (!_pdb_status.ok()) return _pdb_status; \
  } while (false)

/// Assigns the value of a Result<T> expression or propagates its error.
#define PDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

#define PDB_ASSIGN_OR_RETURN(lhs, expr) \
  PDB_ASSIGN_OR_RETURN_IMPL(PDB_CONCAT_(_pdb_result_, __LINE__), lhs, expr)

#define PDB_CONCAT_INNER_(a, b) a##b
#define PDB_CONCAT_(a, b) PDB_CONCAT_INNER_(a, b)

}  // namespace pdb

#endif  // PDB_UTIL_STATUS_H_
