/// \file hash.h
/// \brief Hash-combining utilities used by hash-consed structures
/// (Boolean formula DAG, OBDD unique tables, DPLL caches).

#ifndef PDB_UTIL_HASH_H_
#define PDB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace pdb {

/// Mixes `v` into the running hash `seed` (boost::hash_combine style, with a
/// 64-bit golden-ratio constant and extra avalanche).
inline size_t HashCombine(size_t seed, size_t v) {
  // splitmix64 finalizer applied to v before combining.
  uint64_t x = v;
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x = x ^ (x >> 31);
  return seed ^ (static_cast<size_t>(x) + 0x9e3779b97f4a7c15ULL +
                 (seed << 6) + (seed >> 2));
}

/// Hashes each argument with std::hash and combines them.
template <typename... Ts>
size_t HashValues(const Ts&... values) {
  size_t seed = 0x5bd1e995;
  ((seed = HashCombine(seed, std::hash<Ts>{}(values))), ...);
  return seed;
}

/// Hashes a contiguous range of hashable items.
template <typename It>
size_t HashRange(It begin, It end) {
  size_t seed = 0xcbf29ce484222325ULL;
  for (It it = begin; it != end; ++it) {
    seed = HashCombine(seed, std::hash<std::decay_t<decltype(*it)>>{}(*it));
  }
  return seed;
}

}  // namespace pdb

#endif  // PDB_UTIL_HASH_H_
