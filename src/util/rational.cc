#include "util/rational.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace pdb {

BigRational::BigRational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  PDB_CHECK(!den_.is_zero());
  Normalize();
}

void BigRational::Normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  // Fast path for dyadic denominators (the common case throughout pdb,
  // since probabilities enter as doubles): gcd(num, 2^k) is a shift, which
  // avoids quadratic big-integer division on huge operands.
  if (den_.IsPowerOfTwo()) {
    int shift = std::min(num_.TrailingZeroBits(), den_.TrailingZeroBits());
    if (shift > 0) {
      num_ = num_.ShiftRight(shift);
      den_ = den_.ShiftRight(shift);
    }
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ = num_ / g;
    den_ = den_ / g;
  }
}

BigRational BigRational::FromDouble(double value) {
  PDB_CHECK(std::isfinite(value));
  if (value == 0.0) return BigRational();
  int exp = 0;
  double mantissa = std::frexp(value, &exp);  // value = mantissa * 2^exp
  // Scale mantissa to a 53-bit integer.
  int64_t scaled = static_cast<int64_t>(std::ldexp(mantissa, 53));
  exp -= 53;
  BigInt num(scaled);
  if (exp >= 0) return BigRational(num * BigInt::Pow2(exp), BigInt(1));
  return BigRational(std::move(num), BigInt::Pow2(-exp));
}

Result<BigRational> BigRational::FromString(std::string_view text) {
  text = StrTrim(text);
  size_t slash = text.find('/');
  if (slash != std::string_view::npos) {
    PDB_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(text.substr(0, slash)));
    PDB_ASSIGN_OR_RETURN(BigInt den,
                         BigInt::FromString(text.substr(slash + 1)));
    if (den.is_zero()) return Status::InvalidArgument("zero denominator");
    return BigRational(std::move(num), std::move(den));
  }
  size_t dot = text.find('.');
  if (dot != std::string_view::npos) {
    std::string digits(text.substr(0, dot));
    std::string_view frac = text.substr(dot + 1);
    digits.append(frac);
    PDB_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(digits));
    return BigRational(std::move(num), BigInt(10).Pow(frac.size()));
  }
  PDB_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(text));
  return BigRational(std::move(num));
}

BigRational BigRational::operator-() const {
  BigRational out = *this;
  out.num_ = -out.num_;
  return out;
}

BigRational BigRational::operator+(const BigRational& other) const {
  return BigRational(num_ * other.den_ + other.num_ * den_,
                     den_ * other.den_);
}

BigRational BigRational::operator-(const BigRational& other) const {
  return BigRational(num_ * other.den_ - other.num_ * den_,
                     den_ * other.den_);
}

BigRational BigRational::operator*(const BigRational& other) const {
  return BigRational(num_ * other.num_, den_ * other.den_);
}

BigRational BigRational::operator/(const BigRational& other) const {
  PDB_CHECK(!other.is_zero());
  return BigRational(num_ * other.den_, den_ * other.num_);
}

bool BigRational::operator<(const BigRational& other) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return num_ * other.den_ < other.num_ * den_;
}

BigRational BigRational::Pow(uint64_t exp) const {
  BigRational out(1);
  out.num_ = num_.Pow(exp);
  out.den_ = den_.Pow(exp);
  return out;  // already in lowest terms since num_/den_ were coprime
}

double BigRational::ToDouble() const {
  if (num_.is_zero()) return 0.0;
  // Shift both sides into a safely representable window, then divide and
  // reapply the exponent difference.
  int shift_num = std::max(0, num_.BitLength() - 900);
  int shift_den = std::max(0, den_.BitLength() - 900);
  BigInt n = shift_num > 0 ? num_ / BigInt::Pow2(shift_num) : num_;
  BigInt d = shift_den > 0 ? den_ / BigInt::Pow2(shift_den) : den_;
  double val = n.ToDouble() / d.ToDouble();
  return val * std::pow(2.0, shift_num - shift_den);
}

std::string BigRational::ToString() const {
  if (den_ == BigInt(1)) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

size_t BigRational::hash() const {
  return HashCombine(num_.hash(), den_.hash());
}

}  // namespace pdb
