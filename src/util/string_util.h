/// \file string_util.h
/// \brief Small string helpers shared across modules (splitting, joining,
/// printf-style formatting into std::string).

#ifndef PDB_UTIL_STRING_UTIL_H_
#define PDB_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace pdb {

/// Splits `text` on `sep`. Keeps empty fields; "a,,b" -> {"a","","b"}.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace pdb

#endif  // PDB_UTIL_STRING_UTIL_H_
