/// \file big_int.h
/// \brief Arbitrary-precision signed integers.
///
/// Used wherever floating point would silently lose the answer: exact model
/// counts (up to 2^n models), exact weighted model counting over rational
/// probabilities, and the symmetric-database lifted counting algorithm whose
/// intermediate terms involve p^{n^2}-scale magnitudes.
///
/// Representation: sign + little-endian base-2^32 limbs, no leading zero
/// limbs, zero is the empty limb vector with positive sign.

#ifndef PDB_UTIL_BIG_INT_H_
#define PDB_UTIL_BIG_INT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pdb {

/// Arbitrary-precision signed integer.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From a machine integer.
  BigInt(int64_t value);  // NOLINT(runtime/explicit): intended conversion.

  /// Parses a decimal string with optional leading '-'.
  static Result<BigInt> FromString(std::string_view text);

  /// 2^exp. `exp` must be >= 0.
  static BigInt Pow2(int exp);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  /// Sign as -1, 0, or +1.
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (C semantics: quotient rounds toward zero).
  /// `other` must be nonzero.
  BigInt operator/(const BigInt& other) const;
  /// Remainder matching operator/ (same sign as dividend). Nonzero divisor.
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }

  bool operator==(const BigInt& other) const;
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const;
  bool operator<=(const BigInt& other) const { return !(other < *this); }
  bool operator>(const BigInt& other) const { return other < *this; }
  bool operator>=(const BigInt& other) const { return !(*this < other); }

  /// this^exp with exp >= 0 (binary exponentiation).
  BigInt Pow(uint64_t exp) const;

  /// Greatest common divisor of |a| and |b|; result is non-negative.
  static BigInt Gcd(BigInt a, BigInt b);

  /// Binomial coefficient C(n, k) computed exactly.
  static BigInt Binomial(uint64_t n, uint64_t k);

  /// n! computed exactly.
  static BigInt Factorial(uint64_t n);

  /// Decimal representation.
  std::string ToString() const;

  /// Nearest double (may overflow to +/-inf for huge values).
  double ToDouble() const;

  /// Value as int64 if representable.
  Result<int64_t> ToInt64() const;

  /// Number of significant bits of |value| (0 for zero).
  int BitLength() const;

  /// Number of trailing zero bits of |value| (0 for zero).
  int TrailingZeroBits() const;

  /// True iff |value| == 2^k for some k >= 0.
  bool IsPowerOfTwo() const;

  /// |this| / 2^k with the original sign (k <= TrailingZeroBits() keeps the
  /// value exact; larger k truncates).
  BigInt ShiftRight(int k) const;

  size_t hash() const;

 private:
  // Unsigned helpers over limb vectors (little-endian base 2^32).
  static std::vector<uint32_t> AddMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint32_t> SubMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  // Returns -1/0/+1 comparing magnitudes.
  static int CmpMag(const std::vector<uint32_t>& a,
                    const std::vector<uint32_t>& b);
  // Long division of magnitudes; quotient returned, remainder via out-param.
  static std::vector<uint32_t> DivMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b,
                                      std::vector<uint32_t>* remainder);
  static void Trim(std::vector<uint32_t>* limbs);

  void Normalize();

  bool negative_ = false;
  std::vector<uint32_t> limbs_;
};

}  // namespace pdb

template <>
struct std::hash<pdb::BigInt> {
  size_t operator()(const pdb::BigInt& v) const { return v.hash(); }
};

#endif  // PDB_UTIL_BIG_INT_H_
