#include "util/big_int.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace pdb {

namespace {
constexpr uint64_t kBase = 1ULL << 32;
}  // namespace

BigInt::BigInt(int64_t value) {
  negative_ = value < 0;
  // Avoid overflow on INT64_MIN by working in unsigned space.
  uint64_t mag =
      negative_ ? ~static_cast<uint64_t>(value) + 1 : static_cast<uint64_t>(value);
  while (mag != 0) {
    limbs_.push_back(static_cast<uint32_t>(mag & 0xffffffffULL));
    mag >>= 32;
  }
  Normalize();
}

Result<BigInt> BigInt::FromString(std::string_view text) {
  text = StrTrim(text);
  if (text.empty()) return Status::InvalidArgument("empty integer literal");
  bool negative = false;
  size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) return Status::InvalidArgument("sign without digits");
  BigInt out;
  const BigInt ten(10);
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrFormat("bad digit '%c' in integer literal", c));
    }
    out = out * ten + BigInt(c - '0');
  }
  out.negative_ = negative;
  out.Normalize();
  return out;
}

BigInt BigInt::Pow2(int exp) {
  PDB_CHECK(exp >= 0);
  BigInt out;
  out.limbs_.assign(exp / 32 + 1, 0);
  out.limbs_.back() = 1u << (exp % 32);
  return out;
}

void BigInt::Trim(std::vector<uint32_t>* limbs) {
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
}

void BigInt::Normalize() {
  Trim(&limbs_);
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

int BigInt::CmpMag(const std::vector<uint32_t>& a,
                   const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<uint32_t> BigInt::AddMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::max(a.size(), b.size()) + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    out.push_back(static_cast<uint32_t>(sum & 0xffffffffULL));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

std::vector<uint32_t> BigInt::SubMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  PDB_DCHECK(CmpMag(a, b) >= 0);
  std::vector<uint32_t> out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= b[i];
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(diff));
  }
  Trim(&out);
  return out;
}

std::vector<uint32_t> BigInt::MulMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffULL);
      carry = cur >> 32;
      ++k;
    }
  }
  Trim(&out);
  return out;
}

std::vector<uint32_t> BigInt::DivMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b,
                                     std::vector<uint32_t>* remainder) {
  PDB_CHECK(!b.empty());
  if (CmpMag(a, b) < 0) {
    *remainder = a;
    Trim(remainder);
    return {};
  }
  // Bit-by-bit long division: simple and fast enough for our magnitudes.
  const int total_bits = static_cast<int>(a.size()) * 32;
  std::vector<uint32_t> quot(a.size(), 0);
  std::vector<uint32_t> rem;
  for (int bit = total_bits - 1; bit >= 0; --bit) {
    // rem = rem << 1 | a.bit(bit)
    uint32_t carry = (a[bit / 32] >> (bit % 32)) & 1u;
    for (size_t i = 0; i < rem.size(); ++i) {
      uint32_t next = rem[i] >> 31;
      rem[i] = (rem[i] << 1) | carry;
      carry = next;
    }
    if (carry) rem.push_back(carry);
    if (CmpMag(rem, b) >= 0) {
      rem = SubMag(rem, b);
      quot[bit / 32] |= 1u << (bit % 32);
    }
  }
  Trim(&quot);
  Trim(&rem);
  *remainder = std::move(rem);
  return quot;
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt out;
  if (negative_ == other.negative_) {
    out.limbs_ = AddMag(limbs_, other.limbs_);
    out.negative_ = negative_;
  } else {
    int cmp = CmpMag(limbs_, other.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      out.limbs_ = SubMag(limbs_, other.limbs_);
      out.negative_ = negative_;
    } else {
      out.limbs_ = SubMag(other.limbs_, limbs_);
      out.negative_ = other.negative_;
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt out;
  out.limbs_ = MulMag(limbs_, other.limbs_);
  out.negative_ = negative_ != other.negative_;
  out.Normalize();
  return out;
}

BigInt BigInt::operator/(const BigInt& other) const {
  PDB_CHECK(!other.is_zero());
  BigInt out;
  std::vector<uint32_t> rem;
  out.limbs_ = DivMag(limbs_, other.limbs_, &rem);
  out.negative_ = negative_ != other.negative_;
  out.Normalize();
  return out;
}

BigInt BigInt::operator%(const BigInt& other) const {
  PDB_CHECK(!other.is_zero());
  BigInt out;
  std::vector<uint32_t> rem;
  DivMag(limbs_, other.limbs_, &rem);
  out.limbs_ = std::move(rem);
  out.negative_ = negative_;  // remainder has the dividend's sign
  out.Normalize();
  return out;
}

bool BigInt::operator==(const BigInt& other) const {
  return negative_ == other.negative_ && limbs_ == other.limbs_;
}

bool BigInt::operator<(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_;
  int cmp = CmpMag(limbs_, other.limbs_);
  return negative_ ? cmp > 0 : cmp < 0;
}

BigInt BigInt::Pow(uint64_t exp) const {
  BigInt base = *this;
  BigInt out(1);
  while (exp > 0) {
    if (exp & 1) out *= base;
    exp >>= 1;
    if (exp) base *= base;
  }
  return out;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a = a.Abs();
  b = b.Abs();
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::Binomial(uint64_t n, uint64_t k) {
  if (k > n) return BigInt();
  if (k > n - k) k = n - k;
  BigInt out(1);
  for (uint64_t i = 1; i <= k; ++i) {
    out *= BigInt(static_cast<int64_t>(n - k + i));
    out = out / BigInt(static_cast<int64_t>(i));
  }
  return out;
}

BigInt BigInt::Factorial(uint64_t n) {
  BigInt out(1);
  for (uint64_t i = 2; i <= n; ++i) out *= BigInt(static_cast<int64_t>(i));
  return out;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  // Repeatedly divide by 10^9 to extract decimal chunks.
  const BigInt chunk(1000000000);
  BigInt cur = Abs();
  std::vector<uint32_t> parts;
  while (!cur.is_zero()) {
    BigInt rem = cur % chunk;
    cur = cur / chunk;
    int64_t r = rem.is_zero() ? 0 : rem.ToInt64().value();
    parts.push_back(static_cast<uint32_t>(r));
  }
  std::string out = negative_ ? "-" : "";
  out += std::to_string(parts.back());
  for (size_t i = parts.size() - 1; i-- > 0;) {
    out += StrFormat("%09u", parts[i]);
  }
  return out;
}

double BigInt::ToDouble() const {
  double out = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

Result<int64_t> BigInt::ToInt64() const {
  if (limbs_.size() > 2) return Status::OutOfRange("BigInt exceeds int64");
  uint64_t mag = 0;
  if (limbs_.size() >= 1) mag = limbs_[0];
  if (limbs_.size() == 2) mag |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (negative_) {
    if (mag > (1ULL << 63)) return Status::OutOfRange("BigInt exceeds int64");
    return static_cast<int64_t>(~mag + 1);
  }
  if (mag > static_cast<uint64_t>(INT64_MAX)) {
    return Status::OutOfRange("BigInt exceeds int64");
  }
  return static_cast<int64_t>(mag);
}

int BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  int bits = static_cast<int>(limbs_.size() - 1) * 32;
  uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

int BigInt::TrailingZeroBits() const {
  if (limbs_.empty()) return 0;
  int bits = 0;
  for (uint32_t limb : limbs_) {
    if (limb == 0) {
      bits += 32;
      continue;
    }
    uint32_t v = limb;
    while ((v & 1u) == 0) {
      ++bits;
      v >>= 1;
    }
    break;
  }
  return bits;
}

bool BigInt::IsPowerOfTwo() const {
  if (limbs_.empty()) return false;
  return BitLength() == TrailingZeroBits() + 1;
}

BigInt BigInt::ShiftRight(int k) const {
  PDB_CHECK(k >= 0);
  BigInt out;
  out.negative_ = negative_;
  const int limb_shift = k / 32;
  const int bit_shift = k % 32;
  if (static_cast<size_t>(limb_shift) >= limbs_.size()) return BigInt();
  out.limbs_.assign(limbs_.begin() + limb_shift, limbs_.end());
  if (bit_shift > 0) {
    uint32_t carry = 0;
    for (size_t i = out.limbs_.size(); i-- > 0;) {
      uint32_t cur = out.limbs_[i];
      out.limbs_[i] = (cur >> bit_shift) | carry;
      carry = cur << (32 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

size_t BigInt::hash() const {
  size_t seed = negative_ ? 0x9e3779b9u : 0x85ebca6bu;
  for (uint32_t limb : limbs_) seed = HashCombine(seed, limb);
  return seed;
}

}  // namespace pdb
