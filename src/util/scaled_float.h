/// \file scaled_float.h
/// \brief Floating point with an explicit wide exponent.
///
/// The symmetric-database algorithms (paper §8) multiply terms like
/// p^(n^2), far below double's exponent range. ScaledFloat keeps a double
/// mantissa in [0.5, 1) (or 0) and a separate 64-bit binary exponent, so
/// magnitude never under/overflows while signs (needed for skolemization's
/// negative weights) still work. ~53 bits of precision.

#ifndef PDB_UTIL_SCALED_FLOAT_H_
#define PDB_UTIL_SCALED_FLOAT_H_

#include <cmath>
#include <cstdint>

#include "util/big_int.h"

namespace pdb {

/// value = mantissa * 2^exponent, mantissa in (-1,-0.5] ∪ {0} ∪ [0.5,1).
class ScaledFloat {
 public:
  ScaledFloat() = default;
  ScaledFloat(double value) { *this = FromDouble(value); }  // NOLINT

  static ScaledFloat FromDouble(double value) {
    ScaledFloat out;
    if (value == 0.0) return out;
    int exp = 0;
    out.mantissa_ = std::frexp(value, &exp);
    out.exponent_ = exp;
    return out;
  }

  static ScaledFloat FromBigInt(const BigInt& value) {
    if (value.is_zero()) return ScaledFloat();
    int bits = value.BitLength();
    // Keep the top ~60 bits for the mantissa.
    int shift = bits > 60 ? bits - 60 : 0;
    BigInt scaled = shift > 0 ? value / BigInt::Pow2(shift) : value;
    ScaledFloat out = FromDouble(scaled.ToDouble());
    out.exponent_ += shift;
    return out;
  }

  bool is_zero() const { return mantissa_ == 0.0; }
  double mantissa() const { return mantissa_; }
  int64_t exponent() const { return exponent_; }

  /// log10 of |value| (for reporting); -inf when zero.
  double Log10Abs() const {
    if (is_zero()) return -HUGE_VAL;
    return std::log10(std::fabs(mantissa_)) +
           static_cast<double>(exponent_) * 0.30102999566398119521;
  }

  double ToDouble() const {
    if (is_zero()) return 0.0;
    if (exponent_ > 1023) return mantissa_ > 0 ? HUGE_VAL : -HUGE_VAL;
    if (exponent_ < -1073) return 0.0;
    return std::ldexp(mantissa_, static_cast<int>(exponent_));
  }

  ScaledFloat operator-() const {
    ScaledFloat out = *this;
    out.mantissa_ = -out.mantissa_;
    return out;
  }

  ScaledFloat operator*(const ScaledFloat& other) const {
    if (is_zero() || other.is_zero()) return ScaledFloat();
    ScaledFloat out;
    out.mantissa_ = mantissa_ * other.mantissa_;
    out.exponent_ = exponent_ + other.exponent_;
    out.Normalize();
    return out;
  }

  ScaledFloat operator+(const ScaledFloat& other) const {
    if (is_zero()) return other;
    if (other.is_zero()) return *this;
    // Align to the larger exponent; drop the smaller term if negligible.
    const ScaledFloat* big = this;
    const ScaledFloat* small = &other;
    if (big->exponent_ < small->exponent_) std::swap(big, small);
    int64_t diff = big->exponent_ - small->exponent_;
    if (diff > 200) return *big;
    ScaledFloat out;
    out.mantissa_ =
        big->mantissa_ + std::ldexp(small->mantissa_, -static_cast<int>(diff));
    out.exponent_ = big->exponent_;
    out.Normalize();
    return out;
  }

  ScaledFloat operator-(const ScaledFloat& other) const {
    return *this + (-other);
  }

  /// Division; `other` must be nonzero.
  ScaledFloat operator/(const ScaledFloat& other) const {
    if (is_zero()) return ScaledFloat();
    ScaledFloat out;
    out.mantissa_ = mantissa_ / other.mantissa_;
    out.exponent_ = exponent_ - other.exponent_;
    out.Normalize();
    return out;
  }

  ScaledFloat& operator+=(const ScaledFloat& o) { return *this = *this + o; }
  ScaledFloat& operator*=(const ScaledFloat& o) { return *this = *this * o; }

  /// this^exp, exp >= 0.
  ScaledFloat Pow(uint64_t exp) const {
    ScaledFloat base = *this;
    ScaledFloat out = FromDouble(1.0);
    while (exp > 0) {
      if (exp & 1) out *= base;
      exp >>= 1;
      if (exp) base *= base;
    }
    return out;
  }

 private:
  void Normalize() {
    if (mantissa_ == 0.0) {
      exponent_ = 0;
      return;
    }
    int exp = 0;
    mantissa_ = std::frexp(mantissa_, &exp);
    exponent_ += exp;
  }

  double mantissa_ = 0.0;
  int64_t exponent_ = 0;
};

}  // namespace pdb

#endif  // PDB_UTIL_SCALED_FLOAT_H_
