#include "util/random.h"

#include "util/check.h"

namespace pdb {

namespace {

// splitmix64: used only to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  for (auto& s : s_) s = SplitMix64(&seed);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  PDB_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Split(uint64_t stream) const {
  // Condense the 256-bit state into one word, fold in the stream index,
  // and let the Rng constructor's splitmix64 chain re-expand it. Distinct
  // indices land in unrelated regions of the seed space, and the parent's
  // own stream is untouched.
  uint64_t h = s_[0];
  h ^= Rotl(s_[1], 13) + 0x9e3779b97f4a7c15ULL;
  h ^= Rotl(s_[2], 29) * 0xbf58476d1ce4e5b9ULL;
  h ^= Rotl(s_[3], 43);
  h += (stream + 1) * 0x94d049bb133111ebULL;
  return Rng(h);
}

}  // namespace pdb
