/// \file rational.h
/// \brief Exact rational arithmetic over BigInt.
///
/// Probabilities in a TID are given as rationals; computing with
/// BigRational end-to-end makes the "exact" oracles in tests and the
/// symmetric-database module genuinely exact, with a careful final
/// conversion to double that avoids overflow/underflow of huge
/// numerators/denominators.

#ifndef PDB_UTIL_RATIONAL_H_
#define PDB_UTIL_RATIONAL_H_

#include <string>

#include "util/big_int.h"

namespace pdb {

/// Exact rational number, always stored in lowest terms with a positive
/// denominator.
class BigRational {
 public:
  /// Zero.
  BigRational() : num_(0), den_(1) {}
  /// Integer value.
  BigRational(int64_t value) : num_(value), den_(1) {}  // NOLINT
  BigRational(BigInt value) : num_(std::move(value)), den_(1) {}  // NOLINT
  /// num/den; den must be nonzero.
  BigRational(BigInt num, BigInt den);

  /// Exact value of a double (every finite double is a dyadic rational).
  static BigRational FromDouble(double value);

  /// Parses "a/b" or a decimal like "0.25" or an integer.
  static Result<BigRational> FromString(std::string_view text);

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  int sign() const { return num_.sign(); }

  BigRational operator-() const;
  BigRational operator+(const BigRational& other) const;
  BigRational operator-(const BigRational& other) const;
  BigRational operator*(const BigRational& other) const;
  /// Exact division; other must be nonzero.
  BigRational operator/(const BigRational& other) const;

  BigRational& operator+=(const BigRational& o) { return *this = *this + o; }
  BigRational& operator-=(const BigRational& o) { return *this = *this - o; }
  BigRational& operator*=(const BigRational& o) { return *this = *this * o; }
  BigRational& operator/=(const BigRational& o) { return *this = *this / o; }

  bool operator==(const BigRational& other) const {
    return num_ == other.num_ && den_ == other.den_;
  }
  bool operator!=(const BigRational& other) const { return !(*this == other); }
  bool operator<(const BigRational& other) const;
  bool operator<=(const BigRational& other) const { return !(other < *this); }
  bool operator>(const BigRational& other) const { return other < *this; }
  bool operator>=(const BigRational& other) const { return !(*this < other); }

  /// this^exp for exp >= 0.
  BigRational Pow(uint64_t exp) const;

  /// Nearest double, robust to huge numerator/denominator magnitudes.
  double ToDouble() const;

  /// "num/den" (or just "num" when den == 1).
  std::string ToString() const;

  size_t hash() const;

 private:
  void Normalize();

  BigInt num_;
  BigInt den_;
};

}  // namespace pdb

template <>
struct std::hash<pdb::BigRational> {
  size_t operator()(const pdb::BigRational& v) const { return v.hash(); }
};

#endif  // PDB_UTIL_RATIONAL_H_
