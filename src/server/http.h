/// \file http.h
/// \brief Self-contained HTTP/1.1 codec for the pdbd server front-end.
///
/// `pdbd` speaks just enough HTTP/1.1 for query traffic and Prometheus
/// scrapes without pulling in an external dependency: an incremental
/// request parser (request line + headers + Content-Length body, keep-alive
/// and pipelining aware, with hard size limits so a hostile peer cannot
/// balloon memory) and response rendering helpers, including `chunked`
/// transfer framing used to stream per-tuple answers as they are written.
///
/// Scope limits are deliberate and explicit: no request Transfer-Encoding
/// (501), no multipart, no compression, no TLS. Every limit violation maps
/// to the proper 4xx status so clients see a reason, not a dropped socket.

#ifndef PDB_SERVER_HTTP_H_
#define PDB_SERVER_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pdb {

/// Parser budgets. A request head (request line + headers) larger than
/// `max_head_bytes` is rejected with 431; a body larger than
/// `max_body_bytes` with 413. Requests the server opted into streaming
/// (see `HttpRequestParser::set_stream_predicate`) are budgeted against
/// `max_stream_body_bytes` instead — their body is consumed incrementally
/// and never buffered whole, so the limit can be orders of magnitude
/// larger (bulk CSV ingest).
struct HttpLimits {
  size_t max_head_bytes = 16 * 1024;
  size_t max_body_bytes = 1 << 20;
  uint64_t max_stream_body_bytes = uint64_t{1} << 30;
};

/// One parsed request. Header names are lowercased; values are trimmed of
/// surrounding whitespace.
struct HttpRequest {
  std::string method;   ///< e.g. "GET", "POST" (uppercase as sent)
  std::string target;   ///< request target, e.g. "/query"
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection persistence: HTTP/1.1 defaults to true unless
  /// `Connection: close`; HTTP/1.0 defaults to false unless keep-alive.
  bool keep_alive = true;

  /// First header with `name` (case-insensitive), or null.
  const std::string* FindHeader(std::string_view name) const;
};

/// Incremental request parser: feed bytes as they arrive off the socket,
/// read out a complete request, `Reset()` to consume it and continue with
/// any pipelined leftover.
class HttpRequestParser {
 public:
  enum class State {
    kNeedMore,  ///< incomplete: feed more bytes
    kComplete,  ///< request() is valid
    kError,     ///< protocol violation: error_status()/error_message()
  };

  explicit HttpRequestParser(HttpLimits limits = {}) : limits_(limits) {}

  /// Streaming opt-in: consulted once per request, at head completion.
  /// When it returns true the request enters streaming mode — `request()`
  /// carries the head with an empty `body`, the body is read out
  /// incrementally with `TakeBodyChunk` as it arrives, and the size limit
  /// checked is `max_stream_body_bytes`. The server installs a predicate
  /// matching its bulk-ingest targets; everything else buffers as before.
  void set_stream_predicate(std::function<bool(const HttpRequest&)> p) {
    stream_predicate_ = std::move(p);
  }

  /// Appends `data` and advances the parse. Idempotently sticky on error.
  State Feed(std::string_view data);

  State state() const { return state_; }
  /// Valid while state() == kComplete, until the next Reset().
  const HttpRequest& request() const { return request_; }
  /// HTTP status describing the violation (400/413/431/501).
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// True once the current request's head completed in streaming mode
  /// (until Reset). While true, the request's body is consumed via
  /// `TakeBodyChunk`; state() reaches kComplete when the final body byte
  /// has been taken.
  bool streaming() const { return streaming_; }
  /// Body bytes of the streaming request not yet returned by
  /// `TakeBodyChunk` (declared Content-Length minus bytes taken).
  uint64_t stream_remaining() const { return stream_remaining_; }
  /// Returns (and discards from the buffer) every body byte currently
  /// available, up to the declared Content-Length. Empty when nothing has
  /// arrived since the last call.
  std::string TakeBodyChunk();

  /// Consumes the completed request and re-parses any pipelined bytes
  /// already buffered (state() afterwards reflects them).
  void Reset();

  /// True when no bytes of a (next) request have been buffered — the
  /// connection is between requests and may be closed without cutting a
  /// request short.
  bool idle() const { return buffer_.empty(); }

 private:
  State Parse();
  State Fail(int status, std::string message);

  HttpLimits limits_;
  std::function<bool(const HttpRequest&)> stream_predicate_;
  std::string buffer_;
  size_t consumed_ = 0;  ///< bytes of buffer_ belonging to request_
  bool head_done_ = false;
  bool streaming_ = false;
  uint64_t stream_remaining_ = 0;
  size_t body_offset_ = 0;
  size_t body_length_ = 0;
  State state_ = State::kNeedMore;
  HttpRequest request_;
  int error_status_ = 400;
  std::string error_message_;
};

/// Reason phrase for the handful of statuses pdbd emits ("OK", "Too Many
/// Requests", ...); "Unknown" otherwise.
const char* HttpReasonPhrase(int status);

/// Renders a complete response with a Content-Length body.
std::string RenderHttpResponse(
    int status, std::string_view content_type, std::string_view body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers =
        {});

/// Renders the head of a chunked-streaming response; follow with
/// `RenderHttpChunk` frames and finish with `kHttpLastChunk`.
std::string RenderHttpChunkedHead(
    int status, std::string_view content_type, bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers =
        {});

/// One chunked-transfer frame around `data` (empty data renders nothing:
/// a zero-size chunk would terminate the stream).
std::string RenderHttpChunk(std::string_view data);

/// The terminating zero-length chunk.
inline constexpr std::string_view kHttpLastChunk = "0\r\n\r\n";

}  // namespace pdb

#endif  // PDB_SERVER_HTTP_H_
