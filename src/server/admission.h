/// \file admission.h
/// \brief Bounded admission control for pdbd query traffic.
///
/// The controller applies the same discipline as `ThreadPool::TrySubmit` at
/// the server boundary: work is accepted only while there is capacity to
/// run or queue it, and everything else is refused *fast* — a full queue
/// answers immediately (no blocking, no timer) so an overloaded server
/// sheds at wire speed instead of building an invisible convoy. Admitted
/// requests that cannot start at once wait in a bounded FIFO with a
/// deadline; waiting past it converts into a shed as well. Both shed
/// flavors surface to clients as HTTP 429 with Retry-After and tick
/// `pdb_admission_rejected_total` / `pdb_shed_total` through the owning
/// session (see `Session::NoteAdmissionRejected`).

#ifndef PDB_SERVER_ADMISSION_H_
#define PDB_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace pdb {

struct AdmissionOptions {
  /// Maximum queries executing at once. 0 resolves to twice the hardware
  /// concurrency at construction.
  size_t max_concurrent = 0;
  /// Maximum queries waiting for an execution slot. An arrival beyond this
  /// is refused immediately (`kShedQueueFull`).
  size_t max_queue = 16;
  /// How long an admitted-to-queue request may wait for a slot before it is
  /// shed (`kShedTimeout`). Keeping this short bounds queueing delay: under
  /// sustained overload the queue sheds instead of growing latency.
  uint64_t queue_timeout_ms = 250;
  /// Per-client fairness cap: at most this many requests from one client
  /// id may occupy slots or queue positions at once; the excess is refused
  /// instantly (`kShedClientLimit`) without consuming queue capacity, so a
  /// chatty client cannot starve the rest. Requests without an
  /// X-Client-Id are exempt — they are distinct callers, not one client —
  /// and stay bounded by the global gate only. 0 = unlimited.
  size_t max_per_client = 0;
};

/// Running totals, readable without stopping traffic.
struct AdmissionStats {
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_timeout = 0;
  uint64_t shed_shutdown = 0;
  uint64_t shed_client_limit = 0;
  size_t in_flight = 0;  ///< currently executing
  size_t queued = 0;     ///< currently waiting for a slot
};

/// Thread-safe gate in front of query execution. Call `Admit()` before
/// running a query; on `kAdmitted` the caller MUST pair it with `Release()`
/// (use `AdmissionTicket` for RAII). Any other decision means the query
/// never ran.
class AdmissionController {
 public:
  enum class Decision {
    kAdmitted,
    kShedQueueFull,    ///< wait queue at capacity — refused instantly
    kShedTimeout,      ///< queued, but no slot freed within queue_timeout_ms
    kShedClientLimit,  ///< this client is over max_per_client — refused
    kShuttingDown,     ///< Shutdown() was called; no new work
  };

  explicit AdmissionController(AdmissionOptions options = {});

  /// Blocks at most `options.queue_timeout_ms` (and not at all when the
  /// queue is full, this client is over its cap, or the controller is
  /// shut down). Pass the same `client_id` to the matching `Release`.
  Decision Admit(const std::string& client_id = {});

  /// Releases one execution slot, waking a queued waiter if any.
  void Release(const std::string& client_id = {});

  /// Refuses all future admissions and wakes every queued waiter (they
  /// return `kShuttingDown`). In-flight work is unaffected — the server
  /// drains it separately.
  void Shutdown();

  AdmissionStats stats() const;
  size_t max_concurrent() const { return max_concurrent_; }

  /// Suggested Retry-After for a shed response: one queue-timeout rounded
  /// up to whole seconds — by then the current queue has either drained or
  /// shed, so a retry sees fresh capacity.
  uint64_t RetryAfterSeconds() const;

 private:
  /// Decrements `client_id`'s occupancy (slots + queue positions), erasing
  /// the entry at zero so the map stays bounded by live clients. Caller
  /// holds mu_.
  void DropClientLocked(const std::string& client_id);

  const size_t max_concurrent_;
  const size_t max_queue_;
  const uint64_t queue_timeout_ms_;
  const size_t max_per_client_;

  mutable std::mutex mu_;
  std::condition_variable slot_available_;
  size_t in_flight_ = 0;
  size_t queued_ = 0;
  bool shutdown_ = false;
  uint64_t admitted_total_ = 0;
  uint64_t shed_queue_full_total_ = 0;
  uint64_t shed_timeout_total_ = 0;
  uint64_t shed_shutdown_total_ = 0;
  uint64_t shed_client_limit_total_ = 0;
  /// Per-client occupancy (executing + queued). guarded by mu_.
  std::unordered_map<std::string, size_t> per_client_;
};

/// RAII pairing of Admit/Release.
class AdmissionTicket {
 public:
  explicit AdmissionTicket(AdmissionController* controller,
                           std::string client_id = {})
      : controller_(controller),
        client_id_(std::move(client_id)),
        decision_(controller->Admit(client_id_)) {}
  ~AdmissionTicket() {
    if (admitted()) controller_->Release(client_id_);
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool admitted() const {
    return decision_ == AdmissionController::Decision::kAdmitted;
  }
  AdmissionController::Decision decision() const { return decision_; }

 private:
  AdmissionController* controller_;
  std::string client_id_;
  AdmissionController::Decision decision_;
};

}  // namespace pdb

#endif  // PDB_SERVER_ADMISSION_H_
