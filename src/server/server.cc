#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "sql/sql.h"
#include "storage/csv.h"
#include "storage/durable_db.h"
#include "storage/write_batch.h"
#include "util/string_util.h"

namespace pdb {

namespace {

constexpr int kRecvTimeoutMs = 200;
constexpr size_t kRecvBufferBytes = 8192;
/// Rows per WriteBatch on the /ingest path: large enough that WAL framing
/// and sync costs amortize, small enough that a batch stays cache-sized.
constexpr size_t kIngestBatchRows = 512;

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t WallMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string ValueToJson(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
      return StrFormat("%lld", static_cast<long long>(v.AsInt()));
    case ValueType::kDouble:
      return StrFormat("%.17g", v.AsDouble());
    case ValueType::kString:
      return StrFormat("\"%s\"", JsonEscape(v.AsString()).c_str());
  }
  return "null";
}

std::string TupleToJson(const Tuple& tuple) {
  std::string out = "[";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ",";
    out += ValueToJson(tuple[i]);
  }
  out += "]";
  return out;
}

std::string ErrorJson(const std::string& message) {
  return StrFormat("{\"error\":\"%s\"}\n", JsonEscape(message).c_str());
}

/// One NDJSON line for a Boolean answer.
std::string BooleanAnswerJson(const QueryAnswer& answer) {
  return StrFormat(
      "{\"probability\":%.17g,\"lower\":%.17g,\"upper\":%.17g,"
      "\"method\":\"%s\",\"exact\":%s,\"std_error\":%.17g,"
      "\"explanation\":\"%s\"}\n",
      answer.probability, answer.lower, answer.upper,
      InferenceMethodToString(answer.method), answer.exact ? "true" : "false",
      answer.std_error, JsonEscape(answer.explanation).c_str());
}

/// One NDJSON line for an answer tuple with its marginal and per-tuple
/// execution metadata (AnswerTupleInfo).
std::string AnswerTupleJson(const Tuple& tuple, double probability,
                            const AnswerTupleInfo* info) {
  std::string out = StrFormat("{\"tuple\":%s,\"probability\":%.17g",
                              TupleToJson(tuple).c_str(), probability);
  if (info != nullptr) {
    out += StrFormat(",\"method\":\"%s\",\"exact\":%s,\"std_error\":%.17g",
                     InferenceMethodToString(info->method),
                     info->exact ? "true" : "false", info->std_error);
  }
  out += "}\n";
  return out;
}

int StatusToHttp(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnsupported:
    case StatusCode::kFailedPrecondition:
      return 400;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kResourceExhausted:
      return 503;
    default:
      return 500;
  }
}

/// Case-insensitively tests whether trimmed `body` starts with "SELECT",
/// routing it to the SQL frontend rather than the FO/UCQ parser.
bool LooksLikeSql(std::string_view body) {
  size_t i = 0;
  while (i < body.size() &&
         (body[i] == ' ' || body[i] == '\t' || body[i] == '\r' ||
          body[i] == '\n')) {
    ++i;
  }
  constexpr std::string_view kSelect = "select";
  if (body.size() - i < kSelect.size()) return false;
  for (size_t j = 0; j < kSelect.size(); ++j) {
    char c = body[i + j];
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    if (c != kSelect[j]) return false;
  }
  return true;
}

/// Does `target` name the /ingest endpoint (with or without parameters)?
bool IsIngestTarget(const std::string& target) {
  return target == "/ingest" || target.rfind("/ingest?", 0) == 0;
}

/// Minimal %XX / '+' decoding for query-parameter values.
std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() &&
               std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      auto hex = [](char c) {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return c - 'A' + 10;
      };
      out.push_back(static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

/// Splits the request target's query string into key/value pairs.
std::map<std::string, std::string> ParseTargetParams(const std::string& target) {
  std::map<std::string, std::string> params;
  size_t q = target.find('?');
  if (q == std::string::npos) return params;
  std::string_view rest(target.data() + q + 1, target.size() - q - 1);
  while (!rest.empty()) {
    size_t amp = rest.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      params[UrlDecode(pair)] = "";
    } else {
      params[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
  }
  return params;
}

/// Shared hold on the durable layer's read lock for the duration of one
/// engine call: queries scan the ProbDatabase lock-free, and when a
/// durable store is mounted POST /ingest mutates it concurrently — the
/// commit path's apply step takes the exclusive side (durable_db.h).
/// No-op when the server is in-memory: nothing mutates the database while
/// serving. Release before streaming the response so a slow client never
/// holds readers' state against a bulk load.
class DbReadLock {
 public:
  explicit DbReadLock(DurableDatabase* durable) {
    if (durable != nullptr) {
      lock_ = std::shared_lock<std::shared_mutex>(durable->read_mutex());
    }
  }
  void Release() {
    if (lock_.owns_lock()) lock_.unlock();
  }

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

bool ParseDecimalHeader(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

PdbServer::PdbServer(const ProbDatabase* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      admission_(options_.admission),
      sessions_(db, options_.sessions) {
  if (!options_.log_file.empty() || options_.slow_query_ms > 0) {
    EventLogOptions log_options;
    log_options.file_path = options_.log_file;
    event_log_ = std::make_unique<EventLog>(log_options);
  }
  if (options_.slow_query_ms > 0) {
    SlowQueryLog::Options slow_options;
    slow_options.threshold_us = options_.slow_query_ms * 1000;
    slow_options.ring_size = options_.slow_query_ring;
    slow_options.sink = event_log_.get();
    slow_query_log_ = std::make_unique<SlowQueryLog>(slow_options);
  }
  connections_accepted_ = metrics_.GetCounter("pdb_connections_accepted_total");
  connections_dropped_ = metrics_.GetCounter("pdb_connections_dropped_total");
  http_requests_ = metrics_.GetCounter("pdb_http_requests_total");
  http_2xx_ = metrics_.GetCounter("pdb_http_responses_2xx_total");
  http_4xx_ = metrics_.GetCounter("pdb_http_responses_4xx_total");
  http_5xx_ = metrics_.GetCounter("pdb_http_responses_5xx_total");
  http_429_ = metrics_.GetCounter("pdb_http_responses_429_total");
  http_parse_errors_ = metrics_.GetCounter("pdb_http_parse_errors_total");
  shutdown_cancelled_ =
      metrics_.GetCounter("pdb_shutdown_cancelled_queries_total");
  ingest_requests_ = metrics_.GetCounter("pdb_ingest_requests_total");
  ingest_rows_ = metrics_.GetCounter("pdb_ingest_rows_total");
  ingest_batches_ = metrics_.GetCounter("pdb_ingest_batches_total");
  connections_active_ = metrics_.GetGauge("pdb_connections_active");
  draining_gauge_ = metrics_.GetGauge("pdb_server_draining");
  request_latency_us_ = metrics_.GetHistogram("pdb_http_request_latency_us");
}

PdbServer::~PdbServer() { Shutdown(); }

Status PdbServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StrFormat("socket(): %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrFormat("bad listen address '%s'", options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::Internal(
        StrFormat("bind(%s:%u): %s", options_.host.c_str(),
                  static_cast<unsigned>(options_.port), std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, options_.accept_backlog) != 0) {
    Status status =
        Status::Internal(StrFormat("listen(): %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (event_log_) {
    event_log_->Log(LogLevel::kInfo, "server_start",
                    {LogField::Str("host", options_.host),
                     LogField::Uint("port", port_)});
  }
  return Status::OK();
}

void PdbServer::AcceptLoop() {
  while (!accept_stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    ReapFinished();
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    size_t active;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      active = connections_.size();
    }
    if (active >= options_.max_connections) {
      // Over the connection cap: shed at the listener with a one-shot 503
      // rather than letting the kernel queue grow silently.
      connections_dropped_->Add(1);
      std::string response = RenderHttpResponse(
          503, "application/json", ErrorJson("connection limit reached"),
          /*keep_alive=*/false,
          {{"Retry-After", StrFormat("%llu",
                                     static_cast<unsigned long long>(
                                         admission_.RetryAfterSeconds()))}});
      SendAll(fd, response);
      ::close(fd);
      continue;
    }

    connections_accepted_->Add(1);
    connections_active_->Add(1);
    std::lock_guard<std::mutex> lock(conn_mu_);
    uint64_t id = next_conn_id_++;
    Connection& conn = connections_[id];
    conn.fd = fd;
    conn.thread = std::thread([this, id, fd] { ServeConnection(id, fd); });
  }
}

void PdbServer::ReapFinished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (uint64_t id : finished_) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      done.push_back(std::move(it->second.thread));
      connections_.erase(it);
    }
    finished_.clear();
  }
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void PdbServer::ServeConnection(uint64_t id, int fd) {
  timeval tv{};
  tv.tv_sec = kRecvTimeoutMs / 1000;
  tv.tv_usec = (kRecvTimeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  HttpRequestParser parser(options_.http);
  // Bulk-ingest bodies stream through the parser instead of buffering
  // whole: the predicate flips the parser into streaming mode at head
  // completion, and HandleIngest then owns the recv loop for that request.
  parser.set_stream_predicate([](const HttpRequest& r) {
    return r.method == "POST" && IsIngestTarget(r.target);
  });
  char buffer[kRecvBufferBytes];
  uint64_t idle_ms = 0;
  bool keep_open = true;
  // Per-request trace, created when the request's first bytes arrive so
  // its epoch marks arrival: HandleRequest records [0, parse end) as the
  // http_parse span.
  std::shared_ptr<QueryTrace> request_trace;

  while (keep_open && !stopping_.load(std::memory_order_acquire)) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      idle_ms = 0;
      if (options_.trace_queries && request_trace == nullptr) {
        request_trace = std::make_shared<QueryTrace>();
      }
      HttpRequestParser::State state =
          parser.Feed(std::string_view(buffer, static_cast<size_t>(n)));
      // Dispatch every request this batch of bytes completed. Streaming
      // (ingest) requests dispatch as soon as their head is parsed —
      // HandleIngest drives the socket until the body is consumed — while
      // ordinary requests wait for kComplete.
      while (keep_open &&
             (parser.streaming() ||
              state == HttpRequestParser::State::kComplete)) {
        keep_open = parser.streaming()
                        ? HandleIngest(fd, &parser, std::move(request_trace))
                        : HandleRequest(fd, parser.request(),
                                        std::move(request_trace));
        request_trace = nullptr;
        if (!keep_open) break;
        parser.Reset();
        state = parser.state();
        // A pipelined next request is already in flight: its bytes arrived
        // with this batch, so its trace starts now.
        if (options_.trace_queries &&
            (state == HttpRequestParser::State::kComplete ||
             parser.streaming() || !parser.idle())) {
          request_trace = std::make_shared<QueryTrace>();
        }
      }
      if (state == HttpRequestParser::State::kError) {
        http_parse_errors_->Add(1);
        SendError(fd, parser.error_status(), parser.error_message(),
                  /*keep_alive=*/false);
        keep_open = false;
      }
    } else if (n == 0) {
      keep_open = false;  // peer closed
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      idle_ms += kRecvTimeoutMs;
      if (idle_ms >= options_.idle_timeout_ms) {
        // Mid-request stalls get a 408 so the client learns why; an idle
        // keep-alive connection is just closed.
        if (!parser.idle()) {
          SendError(fd, 408, "timed out waiting for request",
                    /*keep_alive=*/false);
        }
        keep_open = false;
      }
    } else if (errno != EINTR) {
      keep_open = false;
    }
  }

  ::close(fd);
  connections_active_->Add(-1);
  std::lock_guard<std::mutex> lock(conn_mu_);
  finished_.push_back(id);
}

void PdbServer::CountResponse(int status) {
  if (status == 429) {
    http_429_->Add(1);
  } else if (status >= 500) {
    http_5xx_->Add(1);
  } else if (status >= 400) {
    http_4xx_->Add(1);
  } else {
    http_2xx_->Add(1);
  }
}

bool PdbServer::SendError(
    int fd, int status, const std::string& message, bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  CountResponse(status);
  std::string response = RenderHttpResponse(
      status, "application/json", ErrorJson(message), keep_alive,
      extra_headers);
  return SendAll(fd, response) && keep_alive;
}

bool PdbServer::SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

bool PdbServer::HandleRequest(int fd, const HttpRequest& request,
                              std::shared_ptr<QueryTrace> trace) {
  http_requests_->Add(1);
  uint64_t start_us = NowMicros();
  // The trace's epoch is the arrival of the request's first bytes, so the
  // elapsed time up to here is exactly the read + parse phase.
  if (trace) {
    trace->RecordSpan(TracePhase::kHttpParse, 0, trace->NowNs());
  }
  bool keep_open;
  if (request.target == "/query") {
    keep_open = request.method == "POST"
                    ? HandleQuery(fd, request, std::move(trace))
                    : SendError(fd, 405, "POST required", request.keep_alive);
  } else if (request.target == "/metrics") {
    keep_open = request.method == "GET"
                    ? HandleMetrics(fd, request)
                    : SendError(fd, 405, "GET required", request.keep_alive);
  } else if (request.target == "/healthz") {
    keep_open = request.method == "GET"
                    ? HandleHealthz(fd, request)
                    : SendError(fd, 405, "GET required", request.keep_alive);
  } else if (request.target == "/debug/traces") {
    keep_open = request.method == "GET"
                    ? HandleTraces(fd, request)
                    : SendError(fd, 405, "GET required", request.keep_alive);
  } else if (request.target == "/debug/slowlog") {
    keep_open = request.method == "GET"
                    ? HandleSlowlog(fd, request)
                    : SendError(fd, 405, "GET required", request.keep_alive);
  } else if (request.target == "/debug/profile") {
    keep_open = request.method == "GET"
                    ? HandleProfile(fd, request)
                    : SendError(fd, 405, "GET required", request.keep_alive);
  } else if (IsIngestTarget(request.target)) {
    // POST /ingest never reaches here (the stream predicate routes it to
    // HandleIngest before the body is read); any other method does.
    keep_open = SendError(fd, 405, "POST required", request.keep_alive);
  } else {
    keep_open = SendError(fd, 404, "no such endpoint", request.keep_alive);
  }
  request_latency_us_->Record(NowMicros() - start_us);
  return keep_open;
}

bool PdbServer::HandleIngest(int fd, HttpRequestParser* parser,
                             std::shared_ptr<QueryTrace> trace) {
  const HttpRequest& request = parser->request();
  http_requests_->Add(1);
  ingest_requests_->Add(1);
  uint64_t start_us = NowMicros();
  if (trace) trace->RecordSpan(TracePhase::kHttpParse, 0, trace->NowNs());
  // Every failure path closes the connection: honouring keep-alive would
  // mean draining the rest of a possibly-gigabyte body first.
  auto abort_request = [&](int status, const std::string& message) {
    request_latency_us_->Record(NowMicros() - start_us);
    SendError(fd, status, message, /*keep_alive=*/false);
    return false;
  };

  if (draining_.load(std::memory_order_acquire)) {
    return abort_request(503, "server is draining");
  }
  if (options_.durable == nullptr) {
    return abort_request(
        400, "bulk ingest requires durable storage (start pdbd --data-dir)");
  }

  std::map<std::string, std::string> params =
      ParseTargetParams(request.target);
  const std::string relation_name = params["relation"];
  if (relation_name.empty()) {
    return abort_request(400, "missing ?relation= parameter");
  }
  CsvOptions csv;
  bool skip_header = params.count("header") && params["header"] == "1";

  // Admission: bulk loads contend with queries for the same execution
  // slots, and the per-client cap applies to them the same way.
  std::string client_id;
  if (const std::string* header = request.FindHeader("x-client-id")) {
    client_id = *header;
  }
  TraceSpan admission_span(trace.get(), TracePhase::kAdmissionWait);
  AdmissionTicket ticket(&admission_, client_id);
  admission_span.End();
  if (!ticket.admitted()) {
    if (ticket.decision() == AdmissionController::Decision::kShuttingDown) {
      return abort_request(503, "server is draining");
    }
    sessions_.ForClient(client_id)->NoteAdmissionRejected();
    return abort_request(429, "server overloaded; retry the bulk load");
  }

  // Resolve (or create) the target relation. ?schema= creates it when
  // absent — through the WAL, so the DDL is as durable as the rows. The
  // catalog probe holds the durable read lock (another connection's batch
  // may be mid-apply); CreateRelation and ApplyBatch take the exclusive
  // side internally, so they must run with the lock released.
  DurableDatabase* durable = options_.durable;
  Schema schema;
  bool relation_exists = false;
  {
    DbReadLock db_lock(durable);
    auto existing = durable->pdb().database().Get(relation_name);
    if (existing.ok()) {
      schema = (*existing)->schema();
      relation_exists = true;
    }
  }
  if (!relation_exists) {
    if (!params.count("schema")) {
      return abort_request(
          400, StrFormat("unknown relation '%s' (pass ?schema= to create it)",
                         relation_name.c_str()));
    }
    auto parsed = ParseSchemaSpec(params["schema"]);
    if (!parsed.ok()) {
      return abort_request(400, parsed.status().message());
    }
    schema = *parsed;
    Status created = durable->CreateRelation(relation_name, schema);
    if (!created.ok()) {
      return abort_request(400, created.message());
    }
  }

  // The ingest loop: consume body chunks as they arrive, split into lines,
  // parse rows, and commit every kIngestBatchRows rows as one WriteBatch
  // through the group-commit WAL. `pending` holds the trailing partial
  // line between chunks; nothing else is buffered.
  size_t rows = 0;
  size_t committed_rows = 0;
  size_t batches = 0;
  uint64_t body_bytes = 0;
  WriteBatch batch;
  std::string pending;
  Status failure;

  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    const size_t batch_rows = batch.count();
    Status applied = durable->ApplyBatch(&batch);
    batch.Clear();
    if (applied.ok()) {
      batches += 1;
      committed_rows += batch_rows;
      ingest_batches_->Add(1);
    }
    return applied;
  };
  auto consume_line = [&](std::string line) -> Status {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (skip_header) {
      skip_header = false;
      return Status::OK();
    }
    if (StrTrim(line).empty()) return Status::OK();
    auto row = ParseCsvRow(schema, line, csv);
    if (!row.ok()) {
      return Status::InvalidArgument(StrFormat(
          "row %zu: %s", rows + 1, row.status().message().c_str()));
    }
    batch.Insert(relation_name, std::move(row->first), row->second);
    rows += 1;
    if (batch.count() >= kIngestBatchRows) return flush();
    return Status::OK();
  };
  auto consume_chunk = [&](const std::string& chunk) {
    if (!failure.ok()) return;  // drain the rest without parsing
    body_bytes += chunk.size();
    pending += chunk;
    size_t start = 0;
    size_t eol;
    while (failure.ok() &&
           (eol = pending.find('\n', start)) != std::string::npos) {
      failure = consume_line(pending.substr(start, eol - start));
      start = eol + 1;
    }
    pending.erase(0, start);
  };

  // First drain whatever body bytes arrived with the head, then recv the
  // rest. The parser flips to kComplete when the final body byte is taken.
  consume_chunk(parser->TakeBodyChunk());
  char buffer[kRecvBufferBytes];
  uint64_t idle_ms = 0;
  while (failure.ok() &&
         parser->state() != HttpRequestParser::State::kComplete) {
    if (stopping_.load(std::memory_order_acquire)) {
      return abort_request(503, "server is shutting down");
    }
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      idle_ms = 0;
      parser->Feed(std::string_view(buffer, static_cast<size_t>(n)));
      consume_chunk(parser->TakeBodyChunk());
    } else if (n == 0) {
      // Peer closed mid-body: committed batches stay (each was durable on
      // commit), but there is nobody left to answer.
      request_latency_us_->Record(NowMicros() - start_us);
      return false;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      idle_ms += kRecvTimeoutMs;
      if (idle_ms >= options_.idle_timeout_ms) {
        return abort_request(408, "timed out waiting for request body");
      }
    } else if (errno != EINTR) {
      request_latency_us_->Record(NowMicros() - start_us);
      return false;
    }
  }
  // A final line without a trailing newline is still a row.
  if (failure.ok() && !pending.empty()) {
    failure = consume_line(std::move(pending));
  }
  if (failure.ok()) failure = flush();

  if (!failure.ok()) {
    // Ingest is transactional per batch, not per request: batches that
    // committed before the failure are durable. Report how far we got.
    return abort_request(
        StatusToHttp(failure),
        StrFormat("%s (%zu rows in %zu batches committed before the error)",
                  failure.message().c_str(), committed_rows, batches));
  }

  ingest_rows_->Add(rows);
  CountResponse(200);
  std::string body = StrFormat(
      "{\"relation\":\"%s\",\"rows\":%zu,\"batches\":%zu,\"bytes\":%llu,"
      "\"elapsed_us\":%llu}\n",
      JsonEscape(relation_name).c_str(), rows, batches,
      static_cast<unsigned long long>(body_bytes),
      static_cast<unsigned long long>(NowMicros() - start_us));
  TraceSpan respond_span(trace.get(), TracePhase::kHttpRespond);
  bool sent = SendAll(
      fd, RenderHttpResponse(200, "application/json", body,
                             request.keep_alive));
  respond_span.End();
  if (trace) trace->Finish();
  request_latency_us_->Record(NowMicros() - start_us);
  return sent && request.keep_alive;
}

bool PdbServer::HandleHealthz(int fd, const HttpRequest& request) {
  bool draining = draining_.load(std::memory_order_acquire);
  int status = draining ? 503 : 200;
  CountResponse(status);
#ifdef NDEBUG
  const char* build = "release";
#else
  const char* build = "debug";
#endif
  std::string body = StrFormat(
      "{\"status\":\"%s\",\"hardware_concurrency\":%zu,\"build\":\"%s\","
      "\"data_dir_mode\":\"%s\"}\n",
      draining ? "draining" : "ok", ThreadPool::HardwareThreads(), build,
      JsonEscape(options_.data_dir_mode).c_str());
  std::string response = RenderHttpResponse(status, "application/json", body,
                                            request.keep_alive);
  return SendAll(fd, response) && request.keep_alive;
}

bool PdbServer::HandleMetrics(int fd, const HttpRequest& request) {
  CountResponse(200);
  std::string response = RenderHttpResponse(
      200, "text/plain; version=0.0.4", MetricsText(), request.keep_alive);
  return SendAll(fd, response) && request.keep_alive;
}

std::string PdbServer::MetricsText() {
  MetricsSnapshot merged = metrics_.Snapshot();
  sessions_.ForEachSession([&merged](const std::string&, Session& session) {
    merged.MergeFrom(session.SnapshotMetrics());
  });
  if (options_.extra_metrics != nullptr) {
    merged.MergeFrom(options_.extra_metrics->Snapshot());
  }
  return merged.RenderPrometheus();
}

bool PdbServer::HandleTraces(int fd, const HttpRequest& request) {
  std::string body = "{\"clients\":[";
  bool first_client = true;
  sessions_.ForEachSession([&](const std::string& client_id,
                               Session& session) {
    auto traces = session.recent_traces();
    if (traces.empty()) return;
    body += StrFormat("%s{\"client\":\"%s\",\"traces\":[",
                      first_client ? "" : ",",
                      JsonEscape(client_id).c_str());
    first_client = false;
    for (size_t i = 0; i < traces.size(); ++i) {
      if (i > 0) body += ",";
      body += TraceToJson(*traces[i]);
    }
    body += "]}";
  });
  body += "]}\n";
  CountResponse(200);
  std::string response =
      RenderHttpResponse(200, "application/json", body, request.keep_alive);
  return SendAll(fd, response) && request.keep_alive;
}

bool PdbServer::HandleSlowlog(int fd, const HttpRequest& request) {
  std::string body;
  if (slow_query_log_ == nullptr) {
    body = "{\"enabled\":false,\"entries\":[]}\n";
  } else {
    body = StrFormat("{\"enabled\":true,\"threshold_us\":%llu,"
                     "\"total_captured\":%llu,\"entries\":[",
                     static_cast<unsigned long long>(
                         slow_query_log_->threshold_us()),
                     static_cast<unsigned long long>(
                         slow_query_log_->total_captured()));
    std::vector<SlowQueryEntry> entries = slow_query_log_->entries();
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i > 0) body += ",";
      body += SlowQueryEntryToJson(entries[i]);
    }
    body += "]}\n";
  }
  CountResponse(200);
  std::string response =
      RenderHttpResponse(200, "application/json", body, request.keep_alive);
  return SendAll(fd, response) && request.keep_alive;
}

bool PdbServer::HandleProfile(int fd, const HttpRequest& request) {
  // Aggregate every span duration across the sessions' recent traces (and
  // the durable layer's IO trace) into per-phase latency profiles.
  std::map<TracePhase, std::vector<uint64_t>> durations;
  size_t traces_seen = 0;
  sessions_.ForEachSession([&](const std::string&, Session& session) {
    for (const auto& trace : session.recent_traces()) {
      ++traces_seen;
      for (const QueryTrace::Span& span : trace->spans()) {
        durations[span.phase].push_back(span.duration_ns);
      }
    }
  });
  if (options_.io_trace != nullptr) {
    ++traces_seen;
    for (const QueryTrace::Span& span : options_.io_trace->spans()) {
      durations[span.phase].push_back(span.duration_ns);
    }
  }
  // Exact quantiles: the sample sets are small (bounded rings), so sort
  // rather than approximate.
  auto quantile = [](const std::vector<uint64_t>& sorted, double q) {
    size_t index = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
    return sorted[std::min(index, sorted.size() - 1)];
  };
  std::string body = StrFormat("{\"traces\":%zu,\"phases\":[", traces_seen);
  bool first = true;
  for (auto& [phase, samples] : durations) {
    std::sort(samples.begin(), samples.end());
    uint64_t total = 0;
    for (uint64_t d : samples) total += d;
    body += StrFormat(
        "%s{\"phase\":\"%s\",\"count\":%zu,\"total_ns\":%llu,"
        "\"p50_ns\":%llu,\"p95_ns\":%llu,\"p99_ns\":%llu,\"max_ns\":%llu}",
        first ? "" : ",", TracePhaseName(phase), samples.size(),
        static_cast<unsigned long long>(total),
        static_cast<unsigned long long>(quantile(samples, 0.50)),
        static_cast<unsigned long long>(quantile(samples, 0.95)),
        static_cast<unsigned long long>(quantile(samples, 0.99)),
        static_cast<unsigned long long>(samples.back()));
    first = false;
  }
  body += "]}\n";
  CountResponse(200);
  std::string response =
      RenderHttpResponse(200, "application/json", body, request.keep_alive);
  return SendAll(fd, response) && request.keep_alive;
}

void PdbServer::FinishQuery(Session* session, const std::string& client_id,
                            const std::string& statement, const char* method,
                            uint64_t start_us,
                            const std::shared_ptr<QueryTrace>& trace) {
  if (trace) trace->Finish();
  uint64_t latency_us = NowMicros() - start_us;
  if (slow_query_log_ == nullptr ||
      latency_us < slow_query_log_->threshold_us()) {
    return;
  }
  SlowQueryEntry entry;
  entry.ts_us = WallMicros();
  entry.latency_us = latency_us;
  entry.client = client_id;
  entry.method = method;
  entry.statement = statement;
  if (trace) entry.trace_json = TraceToJson(*trace);
  // EXPLAIN payload: re-plan the statement (plan-only — cheap relative to
  // a statement that just crossed the slow threshold) so the entry shows
  // the routing verdict and the estimated join plan alongside the trace.
  bool analyze = false;
  std::string inner = statement;
  StripExplainPrefix(statement, &analyze, &inner);
  if (LooksLikeSql(inner)) {
    DbReadLock db_lock(options_.durable);
    auto explain = session->ExplainSql(inner, /*analyze=*/false);
    db_lock.Release();
    if (explain.ok()) entry.explain_json = explain->ToJson();
  }
  slow_query_log_->MaybeRecord(std::move(entry));
}

bool PdbServer::HandleQuery(int fd, const HttpRequest& request,
                            std::shared_ptr<QueryTrace> trace) {
  if (draining_.load(std::memory_order_acquire)) {
    return SendError(fd, 503, "server is draining", /*keep_alive=*/false);
  }
  std::string client_id;
  if (const std::string* header = request.FindHeader("x-client-id")) {
    client_id = *header;
  }
  Session* session = sessions_.ForClient(client_id);

  // Per-request wall-clock budget, clamped so a client cannot opt out of
  // the server's ceiling (and "no deadline" counts as exceeding it).
  uint64_t deadline_ms = options_.default_deadline_ms;
  if (const std::string* header = request.FindHeader("x-deadline-ms")) {
    if (!ParseDecimalHeader(*header, &deadline_ms)) {
      return SendError(fd, 400, "malformed X-Deadline-Ms",
                       request.keep_alive);
    }
  }
  if (options_.max_deadline_ms > 0 &&
      (deadline_ms == 0 || deadline_ms > options_.max_deadline_ms)) {
    deadline_ms = options_.max_deadline_ms;
  }

  if (request.body.empty()) {
    return SendError(fd, 400, "empty query body", request.keep_alive);
  }

  // Admission gate: the one place pdbd decides run-now vs shed. Shed
  // requests never touch the engine; they tick the session's
  // pdb_admission_rejected_total / pdb_shed_total and answer 429 fast.
  TraceSpan admission_span(trace.get(), TracePhase::kAdmissionWait);
  AdmissionTicket ticket(&admission_, client_id);
  admission_span.End();
  if (!ticket.admitted()) {
    if (ticket.decision() == AdmissionController::Decision::kShuttingDown) {
      return SendError(fd, 503, "server is draining", /*keep_alive=*/false);
    }
    session->NoteAdmissionRejected();
    const char* reason = "timed out waiting for an execution slot";
    if (ticket.decision() == AdmissionController::Decision::kShedQueueFull) {
      reason = "admission queue full";
    } else if (ticket.decision() ==
               AdmissionController::Decision::kShedClientLimit) {
      reason = "client has too many requests in flight";
    }
    return SendError(
        fd, 429, reason, request.keep_alive,
        {{"Retry-After", StrFormat("%llu", static_cast<unsigned long long>(
                                               admission_.RetryAfterSeconds()))}});
  }

  QueryOptions query_options;
  query_options.trace = options_.trace_queries;
  query_options.exec.num_threads = 1;
  query_options.exec.deadline_ms = deadline_ms;

  uint64_t start_us = NowMicros();
  std::string head = RenderHttpChunkedHead(200, "application/x-ndjson",
                                           request.keep_alive);

  // EXPLAIN [ANALYZE] <sql>: answer with one JSON document (or the text
  // rendering when the client sends Accept: text/plain).
  bool analyze = false;
  std::string explain_inner;
  if (StripExplainPrefix(request.body, &analyze, &explain_inner)) {
    if (!LooksLikeSql(explain_inner)) {
      return SendError(fd, 400, "EXPLAIN requires a SQL SELECT statement",
                       request.keep_alive);
    }
    DbReadLock db_lock(options_.durable);
    Result<ExplainResult> explain =
        session->ExplainSql(explain_inner, analyze, query_options);
    db_lock.Release();
    if (!explain.ok()) {
      return SendError(fd, StatusToHttp(explain.status()),
                       explain.status().message(), request.keep_alive);
    }
    bool as_text = false;
    if (const std::string* accept = request.FindHeader("accept")) {
      as_text = accept->find("text/plain") != std::string::npos;
    }
    CountResponse(200);
    std::string response = RenderHttpResponse(
        200, as_text ? "text/plain" : "application/json",
        as_text ? explain->ToText() : explain->ToJson() + "\n",
        request.keep_alive);
    TraceSpan respond_span(trace.get(), TracePhase::kHttpRespond);
    bool sent = SendAll(fd, response);
    respond_span.End();
    if (trace) trace->Finish();
    return sent && request.keep_alive;
  }

  if (LooksLikeSql(request.body)) {
    Result<SqlSelect> parsed = ParseSql(request.body);
    if (!parsed.ok()) {
      return SendError(fd, 400, parsed.status().message(), request.keep_alive);
    }
    if (parsed->boolean) {
      DbReadLock db_lock(options_.durable);
      Result<QueryAnswer> answer =
          session->QuerySqlBooleanTraced(request.body, query_options, trace);
      db_lock.Release();
      if (!answer.ok()) {
        if (trace) trace->Finish();
        return SendError(fd, StatusToHttp(answer.status()),
                         answer.status().message(), request.keep_alive);
      }
      CountResponse(200);
      std::string out = head;
      out += RenderHttpChunk(BooleanAnswerJson(*answer));
      out += RenderHttpChunk(StrFormat(
          "{\"done\":true,\"rows\":1,\"elapsed_us\":%llu}\n",
          static_cast<unsigned long long>(NowMicros() - start_us)));
      out += kHttpLastChunk;
      TraceSpan respond_span(trace.get(), TracePhase::kHttpRespond);
      bool sent = SendAll(fd, out);
      respond_span.End();
      FinishQuery(session, client_id, request.body,
                  InferenceMethodToString(answer->method), start_us, trace);
      return sent && request.keep_alive;
    }
    std::vector<AnswerTupleInfo> info;
    DbReadLock db_lock(options_.durable);
    Result<Relation> answers =
        session->QuerySqlAnswersTraced(request.body, query_options, &info,
                                       trace);
    db_lock.Release();  // `answers` owns its rows; stream without the lock
    if (!answers.ok()) {
      if (trace) trace->Finish();
      return SendError(fd, StatusToHttp(answers.status()),
                       answers.status().message(), request.keep_alive);
    }
    CountResponse(200);
    // Stream per tuple: the head goes out first, then each answer row as
    // its own chunk, so a consumer sees rows as they serialize instead of
    // one monolithic buffer.
    TraceSpan respond_span(trace.get(), TracePhase::kHttpRespond);
    if (!SendAll(fd, head)) return false;
    const Relation& relation = *answers;
    for (size_t i = 0; i < relation.size(); ++i) {
      const AnswerTupleInfo* tuple_info = i < info.size() ? &info[i] : nullptr;
      if (!SendAll(fd, RenderHttpChunk(AnswerTupleJson(
                           relation.tuple(i), relation.prob(i), tuple_info)))) {
        return false;
      }
    }
    std::string tail = RenderHttpChunk(StrFormat(
        "{\"done\":true,\"rows\":%zu,\"elapsed_us\":%llu}\n", relation.size(),
        static_cast<unsigned long long>(NowMicros() - start_us)));
    tail += kHttpLastChunk;
    bool sent = SendAll(fd, tail);
    respond_span.End();
    FinishQuery(session, client_id, request.body, "answers", start_us, trace);
    return sent && request.keep_alive;
  }

  // Not SQL: Boolean FO sentence / datalog-style UCQ shorthand.
  DbReadLock db_lock(options_.durable);
  Result<QueryAnswer> answer =
      session->QueryTraced(request.body, query_options, trace);
  db_lock.Release();
  if (!answer.ok()) {
    if (trace) trace->Finish();
    return SendError(fd, StatusToHttp(answer.status()),
                     answer.status().message(), request.keep_alive);
  }
  CountResponse(200);
  std::string out = head;
  out += RenderHttpChunk(BooleanAnswerJson(*answer));
  out += RenderHttpChunk(
      StrFormat("{\"done\":true,\"rows\":1,\"elapsed_us\":%llu}\n",
                static_cast<unsigned long long>(NowMicros() - start_us)));
  out += kHttpLastChunk;
  TraceSpan respond_span(trace.get(), TracePhase::kHttpRespond);
  bool sent = SendAll(fd, out);
  respond_span.End();
  FinishQuery(session, client_id, request.body,
              InferenceMethodToString(answer->method), start_us, trace);
  return sent && request.keep_alive;
}

void PdbServer::Shutdown() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (shut_down_.exchange(true)) return;

  if (event_log_ != nullptr) {
    event_log_->Log(LogLevel::kInfo, "server_shutdown",
                    {LogField::Uint("in_flight",
                                    admission_.stats().in_flight)});
  }

  // Phase 1: stop taking new work. The listener closes and the admission
  // gate refuses every new query (503 to clients), while requests already
  // executing continue undisturbed.
  draining_.store(true, std::memory_order_release);
  draining_gauge_->Set(1);
  admission_.Shutdown();
  accept_stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Phase 2: drain. Wait for in-flight requests to finish on their own.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.drain_timeout_ms);
  while (admission_.stats().in_flight > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Phase 3: cancel stragglers. Cooperative — queries observe the cancel
  // at their next ShouldStop() poll — so give them one more (bounded)
  // window to unwind and write their responses.
  size_t stragglers = admission_.stats().in_flight;
  if (stragglers > 0) {
    shutdown_cancelled_->Add(stragglers);
    sessions_.CancelAllInFlight();
    auto cancel_deadline = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(options_.drain_timeout_ms);
    while (admission_.stats().in_flight > 0 &&
           std::chrono::steady_clock::now() < cancel_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  // Phase 4: tear down connections. stopping_ ends the serve loops;
  // shutdown(2) unblocks any thread parked in recv.
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, conn] : connections_) {
      ::shutdown(conn.fd, SHUT_RDWR);
    }
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, conn] : connections_) {
      threads.push_back(std::move(conn.thread));
    }
    connections_.clear();
    finished_.clear();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace pdb
