/// \file session_pool.h
/// \brief Per-client session pool for pdbd.
///
/// Each client (the `X-Client-Id` request header) gets its own `Session`,
/// so one client's result/WMC/index caches and cumulative accounting are
/// isolated from every other client's, while all sessions share the one
/// immutable `ProbDatabase`. Anonymous requests (no client id) land on a
/// shared default session, as does any new client once the pool is at
/// capacity — the cap bounds memory (each session owns caches and possibly
/// a thread pool), and overflow degrades to sharing rather than refusing.
///
/// Sessions are never evicted while the server runs: `Session*` handed out
/// by `ForClient` stays valid until the pool is destroyed, which the server
/// does only after every connection thread has been joined.

#ifndef PDB_SERVER_SESSION_POOL_H_
#define PDB_SERVER_SESSION_POOL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/session.h"

namespace pdb {

struct SessionPoolOptions {
  /// Options applied to every pooled session. The server defaults
  /// `num_threads` to 1 (sequential queries) so a wide client fan-out does
  /// not multiply into num_clients × num_cores engine threads.
  SessionOptions session;
  /// Maximum distinct client sessions (the shared default session is not
  /// counted). Further new clients share the default session.
  size_t max_sessions = 64;
};

class SessionPool {
 public:
  explicit SessionPool(const ProbDatabase* db, SessionPoolOptions options = {});

  /// The session for `client_id`, creating it on first sight. Empty id, or
  /// a new id arriving when the pool is full, yields the shared default
  /// session. Thread-safe; the pointer stays valid for the pool's lifetime.
  Session* ForClient(const std::string& client_id);

  /// Visits every session (default first, then clients in id order) under
  /// the pool lock; `fn` must not call back into the pool.
  void ForEachSession(
      const std::function<void(const std::string& client_id, Session& session)>&
          fn);

  /// Client sessions created so far (excludes the default session).
  size_t size() const;

  /// Cooperatively cancels every in-flight query in every session.
  void CancelAllInFlight();

  /// Sum of top-level in-flight queries across every session.
  int64_t TotalInFlight();

 private:
  const ProbDatabase* db_;
  SessionPoolOptions options_;
  Session default_session_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Session>> sessions_;  // guarded by mu_
};

}  // namespace pdb

#endif  // PDB_SERVER_SESSION_POOL_H_
