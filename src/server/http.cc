#include "server/http.h"

#include <algorithm>
#include <cctype>
#include <cstdint>

#include "util/string_util.h"

namespace pdb {

namespace {

char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiLower(a[i]) != AsciiLower(b[i])) return false;
  }
  return true;
}

std::string_view TrimWhitespace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses a non-negative decimal integer; rejects empty input, non-digits,
/// and overflow past `max`.
bool ParseDecimal(std::string_view s, uint64_t max, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (max - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

HttpRequestParser::State HttpRequestParser::Fail(int status,
                                                 std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_message_ = std::move(message);
  return state_;
}

HttpRequestParser::State HttpRequestParser::Feed(std::string_view data) {
  if (state_ == State::kError) return state_;
  buffer_.append(data.data(), data.size());
  if (state_ == State::kComplete) return state_;  // pipelined bytes wait
  return Parse();
}

HttpRequestParser::State HttpRequestParser::Parse() {
  if (!head_done_) {
    // The head ends at the first blank line; accept bare-LF line endings
    // from hand-typed clients alongside the standard CRLF.
    size_t head_end = buffer_.find("\r\n\r\n");
    size_t terminator_len = 4;
    size_t lf_end = buffer_.find("\n\n");
    if (lf_end != std::string::npos &&
        (head_end == std::string::npos || lf_end < head_end)) {
      head_end = lf_end;
      terminator_len = 2;
    }
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return Fail(431, "request head exceeds limit");
      }
      return state_;  // kNeedMore
    }
    if (head_end > limits_.max_head_bytes) {
      return Fail(431, "request head exceeds limit");
    }

    // Split the head into lines (tolerating \r\n or \n).
    std::string_view head(buffer_.data(), head_end);
    std::vector<std::string_view> lines;
    while (!head.empty()) {
      size_t eol = head.find('\n');
      std::string_view line =
          eol == std::string_view::npos ? head : head.substr(0, eol);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      lines.push_back(line);
      if (eol == std::string_view::npos) break;
      head.remove_prefix(eol + 1);
    }
    if (lines.empty() || lines[0].empty()) {
      return Fail(400, "empty request line");
    }

    // Request line: METHOD SP TARGET SP VERSION.
    std::string_view request_line = lines[0];
    size_t sp1 = request_line.find(' ');
    size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
      return Fail(400, "malformed request line");
    }
    request_.method = std::string(request_line.substr(0, sp1));
    request_.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
    request_.version = std::string(request_line.substr(sp2 + 1));
    if (request_.method.empty() || request_.target.empty()) {
      return Fail(400, "malformed request line");
    }
    if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
      return Fail(400, "unsupported HTTP version");
    }

    // Header fields: name ':' OWS value. Names are lowercased so lookups
    // and the dispatch code never worry about case.
    for (size_t i = 1; i < lines.size(); ++i) {
      std::string_view line = lines[i];
      if (line.empty()) continue;
      size_t colon = line.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        return Fail(400, "malformed header field");
      }
      std::string name(line.substr(0, colon));
      std::string_view raw_name(name);
      if (!TrimWhitespace(raw_name).size() ||
          TrimWhitespace(raw_name).size() != name.size()) {
        return Fail(400, "whitespace in header name");
      }
      std::transform(name.begin(), name.end(), name.begin(), AsciiLower);
      std::string value(TrimWhitespace(line.substr(colon + 1)));
      request_.headers.emplace_back(std::move(name), std::move(value));
    }

    if (request_.FindHeader("transfer-encoding") != nullptr) {
      return Fail(501, "Transfer-Encoding requests are not supported");
    }
    // The streaming decision is made here, at head completion and BEFORE
    // the body limit check: a bulk-ingest request is budgeted against the
    // (much larger) streaming limit and its body is never buffered whole.
    const bool stream = stream_predicate_ && stream_predicate_(request_);
    uint64_t declared_length = 0;
    if (const std::string* cl = request_.FindHeader("content-length")) {
      // Parse with a UINT64 ceiling so an over-limit (but well-formed)
      // length is distinguishable from garbage: the former is 413, the
      // latter 400.
      if (!ParseDecimal(*cl, UINT64_MAX, &declared_length)) {
        return Fail(400, "malformed Content-Length");
      }
      const uint64_t limit = stream ? limits_.max_stream_body_bytes
                                    : limits_.max_body_bytes;
      if (declared_length > limit) {
        return Fail(413, "request body exceeds limit");
      }
    }

    request_.keep_alive = request_.version == "HTTP/1.1";
    if (const std::string* conn = request_.FindHeader("connection")) {
      if (EqualsIgnoreCase(*conn, "close")) request_.keep_alive = false;
      if (EqualsIgnoreCase(*conn, "keep-alive")) request_.keep_alive = true;
    }

    body_offset_ = head_end + terminator_len;
    head_done_ = true;
    if (stream) {
      // Streaming mode: drop the head from the buffer so TakeBodyChunk
      // can hand out body bytes straight from the front. kComplete is
      // reached only when the caller has taken the final byte.
      streaming_ = true;
      stream_remaining_ = declared_length;
      buffer_.erase(0, body_offset_);
      body_offset_ = 0;
      body_length_ = 0;
      if (stream_remaining_ == 0) {
        consumed_ = 0;
        state_ = State::kComplete;
      }
      return state_;
    }
    body_length_ = static_cast<size_t>(declared_length);
  }

  if (streaming_) return state_;  // body consumed via TakeBodyChunk
  if (buffer_.size() - body_offset_ < body_length_) {
    return state_;  // kNeedMore: body still arriving
  }
  request_.body = buffer_.substr(body_offset_, body_length_);
  consumed_ = body_offset_ + body_length_;
  state_ = State::kComplete;
  return state_;
}

std::string HttpRequestParser::TakeBodyChunk() {
  if (!streaming_ || state_ == State::kError) return std::string();
  const size_t n = static_cast<size_t>(
      std::min<uint64_t>(buffer_.size(), stream_remaining_));
  std::string chunk = buffer_.substr(0, n);
  buffer_.erase(0, n);
  stream_remaining_ -= n;
  if (stream_remaining_ == 0 && state_ == State::kNeedMore) {
    consumed_ = 0;  // head and body already erased as they were taken
    state_ = State::kComplete;
  }
  return chunk;
}

void HttpRequestParser::Reset() {
  if (state_ != State::kComplete) return;
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  head_done_ = false;
  streaming_ = false;
  stream_remaining_ = 0;
  body_offset_ = 0;
  body_length_ = 0;
  request_ = HttpRequest();
  state_ = State::kNeedMore;
  if (!buffer_.empty()) Parse();  // pipelined follow-up request
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

namespace {

std::string RenderHead(
    int status, std::string_view content_type, bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out =
      StrFormat("HTTP/1.1 %d %s\r\n", status, HttpReasonPhrase(status));
  out += StrFormat("Content-Type: %.*s\r\n",
                   static_cast<int>(content_type.size()), content_type.data());
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    out += StrFormat("%s: %s\r\n", name.c_str(), value.c_str());
  }
  return out;
}

}  // namespace

std::string RenderHttpResponse(
    int status, std::string_view content_type, std::string_view body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out = RenderHead(status, content_type, keep_alive, extra_headers);
  out += StrFormat("Content-Length: %zu\r\n\r\n", body.size());
  out.append(body.data(), body.size());
  return out;
}

std::string RenderHttpChunkedHead(
    int status, std::string_view content_type, bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out = RenderHead(status, content_type, keep_alive, extra_headers);
  out += "Transfer-Encoding: chunked\r\n\r\n";
  return out;
}

std::string RenderHttpChunk(std::string_view data) {
  if (data.empty()) return "";
  std::string out = StrFormat("%zx\r\n", data.size());
  out.append(data.data(), data.size());
  out += "\r\n";
  return out;
}

}  // namespace pdb
