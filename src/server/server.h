/// \file server.h
/// \brief pdbd: an HTTP/1.1 network front-end for the query engine.
///
/// Architecture (DESIGN.md §4f): a listener thread accepts connections and
/// hands each to its own connection thread (bounded by `max_connections`);
/// every `POST /query` passes the `AdmissionController` gate before it may
/// execute — saturation sheds the request as a fast HTTP 429 with
/// Retry-After — and then runs synchronously on the connection thread
/// against the caller's pooled `Session` (the `X-Client-Id` header picks
/// it; see session_pool.h). Answers stream back as newline-delimited JSON
/// in chunked transfer framing, one line per answer tuple with the
/// per-tuple inference method and standard error, then a final summary
/// line.
///
/// Endpoints:
///   POST /query         SQL (or Boolean FO/UCQ text) in the body.
///                       Headers: X-Client-Id (session affinity),
///                       X-Deadline-Ms (per-request wall-clock budget,
///                       clamped to `max_deadline_ms`).
///   POST /ingest        Streaming CSV bulk load into the durable store
///                       (?relation=R[&schema=a:int,...][&header=1]). The
///                       body is consumed incrementally off the socket —
///                       never buffered whole — and rows are grouped into
///                       WriteBatches committed through the group-commit
///                       WAL. 400 when the server is in-memory.
///   GET  /metrics       Prometheus text: the server's listener registry
///                       merged with every pooled session's registry.
///   GET  /healthz       200 "ok" (503 "draining" during shutdown).
///   GET  /debug/traces  Recent per-phase query traces as JSON.
///
/// Graceful shutdown: stop accepting (listener closes, admission refuses
/// new queries with 503), drain in-flight requests under
/// `drain_timeout_ms`, then cooperatively cancel stragglers through
/// `Session::CancelInFlight` and join every connection thread. `Shutdown`
/// is idempotent and is also run by the destructor.

#ifndef PDB_SERVER_SERVER_H_
#define PDB_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pdb.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/admission.h"
#include "server/http.h"
#include "server/session_pool.h"
#include "util/status.h"

namespace pdb {

class DurableDatabase;

/// The server's session-pool defaults: every pooled session runs its
/// queries sequentially on the connection thread (see ServerOptions).
inline SessionPoolOptions DefaultServerSessions() {
  SessionPoolOptions pool;
  pool.session.num_threads = 1;
  return pool;
}

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via `port()`).
  uint16_t port = 0;
  /// Concurrent connections; an accept beyond this is answered 503 and
  /// closed immediately.
  size_t max_connections = 128;
  int accept_backlog = 64;
  /// Query admission gate (concurrency cap + bounded wait queue).
  AdmissionOptions admission;
  /// Per-client session pool. `session.num_threads` defaults to 1 here —
  /// each admitted query runs sequentially on its connection thread, so
  /// parallelism is governed by admission, not multiplied per client.
  SessionPoolOptions sessions = DefaultServerSessions();
  /// Deadline applied to queries that send no X-Deadline-Ms (0 = none).
  uint64_t default_deadline_ms = 0;
  /// Upper clamp on client-requested deadlines (0 = unclamped).
  uint64_t max_deadline_ms = 60'000;
  /// How long Shutdown waits for in-flight requests before cancelling.
  uint64_t drain_timeout_ms = 5'000;
  /// Keep-alive connections idle longer than this are closed.
  uint64_t idle_timeout_ms = 30'000;
  HttpLimits http;
  /// Record a per-phase QueryTrace for every query (feeds /debug/traces).
  /// The trace covers the whole request: http_parse (first byte to parsed
  /// request), admission_wait, the engine phases, and http_respond.
  bool trace_queries = true;
  /// Extra registry merged into the /metrics exposition (not owned; must
  /// outlive the server). pdbd points this at the durable layer's registry
  /// so WAL/recovery/checkpoint/component-store metrics ride the same
  /// scrape as the engine tickers.
  const MetricsRegistry* extra_metrics = nullptr;
  /// Slow-query threshold in milliseconds (`pdbd --slow-query-ms`); 0
  /// disables the slow-query log. Statements at or above it are captured
  /// with their full trace and an EXPLAIN payload into the ring served by
  /// GET /debug/slowlog, and mirrored to the event log.
  uint64_t slow_query_ms = 0;
  /// Capacity of the slow-query ring.
  size_t slow_query_ring = 64;
  /// Append the structured JSON-lines event log to this file
  /// (`pdbd --log-file`); empty keeps it in-memory only.
  std::string log_file;
  /// Storage mode reported by /healthz: "memory" or "durable" (pdbd sets
  /// it when a --data-dir is mounted).
  std::string data_dir_mode = "memory";
  /// Durable layer's IO trace (WAL append/sync, checkpoint, recovery
  /// spans), aggregated into GET /debug/profile. Not owned; must outlive
  /// the server. Null when storage is in-memory.
  const QueryTrace* io_trace = nullptr;
  /// Durable write path for POST /ingest streaming bulk load (not owned;
  /// must outlive the server). Null (the in-memory default) answers
  /// /ingest with 400 — bulk writes only make sense against the WAL.
  /// When set, ingest batches mutate the shared ProbDatabase while the
  /// server runs; queries coordinate through the durable layer's
  /// `read_mutex()` (shared for each engine call, exclusive for the
  /// commit path's brief apply step).
  DurableDatabase* durable = nullptr;
};

class PdbServer {
 public:
  /// Binds to `db`, which must outlive the server. Nothing but the
  /// server's own /ingest path (present only with `options.durable`, and
  /// serialized against queries via the durable layer's read lock) may
  /// mutate it while the server runs (sessions cache against its
  /// generation).
  explicit PdbServer(const ProbDatabase* db, ServerOptions options = {});
  ~PdbServer();

  PdbServer(const PdbServer&) = delete;
  PdbServer& operator=(const PdbServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Graceful stop: drain, cancel stragglers, join everything. Idempotent.
  void Shutdown();

  /// The bound port (after Start; resolves port 0 to the actual port).
  uint16_t port() const { return port_; }

  /// True once Shutdown has begun.
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// The aggregated Prometheus exposition served at /metrics.
  std::string MetricsText();

  SessionPool& sessions() { return sessions_; }
  AdmissionController& admission() { return admission_; }
  /// Listener-side metrics (connections, HTTP status classes, latency).
  MetricsRegistry& metrics() { return metrics_; }
  /// The structured event log, or null when neither --log-file nor the
  /// slow-query log asked for one.
  EventLog* event_log() { return event_log_.get(); }
  /// The slow-query ring, or null when `slow_query_ms == 0`.
  SlowQueryLog* slow_query_log() { return slow_query_log_.get(); }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void AcceptLoop();
  void ServeConnection(uint64_t id, int fd);
  /// Dispatches one parsed request; returns false when the connection
  /// should close afterwards. `trace` (may be null) was created when the
  /// request's first bytes arrived and carries the http_parse span.
  bool HandleRequest(int fd, const HttpRequest& request,
                     std::shared_ptr<QueryTrace> trace);
  bool HandleQuery(int fd, const HttpRequest& request,
                   std::shared_ptr<QueryTrace> trace);
  /// Streaming bulk load: owns the connection's recv loop until the body
  /// is fully consumed (the parser is in streaming mode). Rows are grouped
  /// into WriteBatches and committed through the durable layer's group
  /// commit; every failure closes the connection (keep-alive would require
  /// draining the remaining body).
  bool HandleIngest(int fd, HttpRequestParser* parser,
                    std::shared_ptr<QueryTrace> trace);
  bool HandleMetrics(int fd, const HttpRequest& request);
  bool HandleHealthz(int fd, const HttpRequest& request);
  bool HandleTraces(int fd, const HttpRequest& request);
  bool HandleSlowlog(int fd, const HttpRequest& request);
  bool HandleProfile(int fd, const HttpRequest& request);
  /// Finishes a query's trace and, when the statement crossed the
  /// slow-query threshold, captures it (trace + EXPLAIN payload) into the
  /// slow-query log.
  void FinishQuery(Session* session, const std::string& client_id,
                   const std::string& statement, const char* method,
                   uint64_t start_us,
                   const std::shared_ptr<QueryTrace>& trace);
  /// Renders and sends a JSON error body; returns `keep_alive`.
  bool SendError(int fd, int status, const std::string& message,
                 bool keep_alive,
                 const std::vector<std::pair<std::string, std::string>>&
                     extra_headers = {});
  bool SendAll(int fd, std::string_view data);
  void CountResponse(int status);
  /// Joins connection threads that have finished serving.
  void ReapFinished();

  const ProbDatabase* db_;
  ServerOptions options_;
  AdmissionController admission_;
  SessionPool sessions_;
  std::unique_ptr<EventLog> event_log_;
  std::unique_ptr<SlowQueryLog> slow_query_log_;

  MetricsRegistry metrics_;
  Counter* connections_accepted_;
  Counter* connections_dropped_;
  Counter* http_requests_;
  Counter* http_2xx_;
  Counter* http_4xx_;
  Counter* http_5xx_;
  Counter* http_429_;
  Counter* http_parse_errors_;
  Counter* shutdown_cancelled_;
  Counter* ingest_requests_;
  Counter* ingest_rows_;
  Counter* ingest_batches_;
  Gauge* connections_active_;
  Gauge* draining_gauge_;
  Histogram* request_latency_us_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> accept_stop_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shut_down_{false};

  std::mutex conn_mu_;
  uint64_t next_conn_id_ = 0;                   // guarded by conn_mu_
  std::map<uint64_t, Connection> connections_;  // guarded by conn_mu_
  std::vector<uint64_t> finished_;              // guarded by conn_mu_
};

}  // namespace pdb

#endif  // PDB_SERVER_SERVER_H_
