#include "server/session_pool.h"

#include <utility>
#include <vector>

namespace pdb {

SessionPool::SessionPool(const ProbDatabase* db, SessionPoolOptions options)
    : db_(db),
      options_(std::move(options)),
      default_session_(db, options_.session) {}

Session* SessionPool::ForClient(const std::string& client_id) {
  if (client_id.empty()) return &default_session_;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(client_id);
  if (it != sessions_.end()) return it->second.get();
  if (sessions_.size() >= options_.max_sessions) return &default_session_;
  auto session = std::make_unique<Session>(db_, options_.session);
  Session* raw = session.get();
  sessions_.emplace(client_id, std::move(session));
  return raw;
}

void SessionPool::ForEachSession(
    const std::function<void(const std::string&, Session&)>& fn) {
  fn("", default_session_);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [client_id, session] : sessions_) {
    fn(client_id, *session);
  }
}

size_t SessionPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void SessionPool::CancelAllInFlight() {
  default_session_.CancelInFlight();
  // Collect first: CancelInFlight takes each session's own lock, and
  // holding the pool lock across those is needless coupling (new sessions
  // created mid-cancel start with nothing in flight anyway).
  std::vector<Session*> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.reserve(sessions_.size());
    for (const auto& [client_id, session] : sessions_) {
      sessions.push_back(session.get());
    }
  }
  for (Session* session : sessions) session->CancelInFlight();
}

int64_t SessionPool::TotalInFlight() {
  int64_t total = default_session_.requests_in_flight();
  std::vector<Session*> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.reserve(sessions_.size());
    for (const auto& [client_id, session] : sessions_) {
      sessions.push_back(session.get());
    }
  }
  for (Session* session : sessions) total += session->requests_in_flight();
  return total;
}

}  // namespace pdb
