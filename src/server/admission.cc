#include "server/admission.h"

#include <chrono>
#include <thread>

namespace pdb {

namespace {

size_t ResolveMaxConcurrent(size_t requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  return static_cast<size_t>(hw) * 2;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : max_concurrent_(ResolveMaxConcurrent(options.max_concurrent)),
      max_queue_(options.max_queue),
      queue_timeout_ms_(options.queue_timeout_ms),
      max_per_client_(options.max_per_client) {}

void AdmissionController::DropClientLocked(const std::string& client_id) {
  if (max_per_client_ == 0 || client_id.empty()) return;
  auto it = per_client_.find(client_id);
  if (it != per_client_.end() && --it->second == 0) per_client_.erase(it);
}

AdmissionController::Decision AdmissionController::Admit(
    const std::string& client_id) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    shed_shutdown_total_ += 1;
    return Decision::kShuttingDown;
  }
  // Per-client fairness first: a client over its cap is refused instantly
  // and never takes a queue position, so the queue stays available to
  // everyone else. Occupancy counts queued requests too — the cap bounds
  // how much of the server one client id can tie up, not just how much it
  // can execute. Requests without an id are exempt: distinct anonymous
  // clients are indistinguishable, and capping them as one shared
  // identity would shed unrelated callers under normal load (the global
  // gate still bounds them).
  if (max_per_client_ > 0 && !client_id.empty()) {
    size_t& occupancy = per_client_[client_id];
    if (occupancy >= max_per_client_) {
      shed_client_limit_total_ += 1;
      return Decision::kShedClientLimit;
    }
    occupancy += 1;
  }
  if (in_flight_ < max_concurrent_) {
    in_flight_ += 1;
    admitted_total_ += 1;
    return Decision::kAdmitted;
  }
  // Saturated. The queue-full case must stay fast: refuse without ever
  // waiting so the rejection path costs one mutex acquisition.
  if (queued_ >= max_queue_) {
    shed_queue_full_total_ += 1;
    DropClientLocked(client_id);
    return Decision::kShedQueueFull;
  }
  queued_ += 1;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(queue_timeout_ms_);
  bool got_slot = slot_available_.wait_until(lock, deadline, [this] {
    return shutdown_ || in_flight_ < max_concurrent_;
  });
  queued_ -= 1;
  if (shutdown_) {
    shed_shutdown_total_ += 1;
    DropClientLocked(client_id);
    return Decision::kShuttingDown;
  }
  if (!got_slot) {
    shed_timeout_total_ += 1;
    DropClientLocked(client_id);
    return Decision::kShedTimeout;
  }
  in_flight_ += 1;
  admitted_total_ += 1;
  return Decision::kAdmitted;
}

void AdmissionController::Release(const std::string& client_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_ -= 1;
    DropClientLocked(client_id);
  }
  slot_available_.notify_one();
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  slot_available_.notify_all();
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats stats;
  stats.admitted = admitted_total_;
  stats.shed_queue_full = shed_queue_full_total_;
  stats.shed_timeout = shed_timeout_total_;
  stats.shed_shutdown = shed_shutdown_total_;
  stats.shed_client_limit = shed_client_limit_total_;
  stats.in_flight = in_flight_;
  stats.queued = queued_;
  return stats;
}

uint64_t AdmissionController::RetryAfterSeconds() const {
  return (queue_timeout_ms_ + 999) / 1000 + 1;
}

}  // namespace pdb
