// Quickstart: build the paper's Figure 1 database, ask queries, inspect how
// the engine answered them.
//
//   $ ./build/examples/quickstart
//
// Walks through:
//  1. creating a tuple-independent database (TID),
//  2. Boolean query evaluation (Example 2.1 and friends),
//  3. non-Boolean queries with per-answer probabilities,
//  4. what happens on a #P-hard query,
//  5. observability: per-phase query traces and the session metrics
//     endpoint (Prometheus text format).

#include "util/check.h"
#include <cstdio>

#include "core/pdb.h"
#include "core/session.h"

using namespace pdb;

namespace {

Database BuildFigure1() {
  Database db;
  // R(x) with marginal probabilities p1..p3.
  Relation r("R", Schema({{"x", ValueType::kString}}));
  PDB_CHECK(r.AddTuple({Value("a1")}, 0.3).ok());
  PDB_CHECK(r.AddTuple({Value("a2")}, 0.5).ok());
  PDB_CHECK(r.AddTuple({Value("a3")}, 0.9).ok());
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  // S(x,y) with q1..q6.
  Relation s("S",
             Schema({{"x", ValueType::kString}, {"y", ValueType::kString}}));
  PDB_CHECK(s.AddTuple({Value("a1"), Value("b1")}, 0.1).ok());
  PDB_CHECK(s.AddTuple({Value("a1"), Value("b2")}, 0.2).ok());
  PDB_CHECK(s.AddTuple({Value("a2"), Value("b3")}, 0.4).ok());
  PDB_CHECK(s.AddTuple({Value("a2"), Value("b4")}, 0.6).ok());
  PDB_CHECK(s.AddTuple({Value("a2"), Value("b5")}, 0.7).ok());
  PDB_CHECK(s.AddTuple({Value("a4"), Value("b6")}, 0.8).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  return db;
}

void Ask(const ProbDatabase& engine, const char* query) {
  auto answer = engine.Query(query);
  if (!answer.ok()) {
    std::printf("  %-48s -> %s\n", query, answer.status().ToString().c_str());
    return;
  }
  std::printf("  %-48s -> %.6f  [%s%s]\n      %s\n", query,
              answer->probability, InferenceMethodToString(answer->method),
              answer->exact ? ", exact" : "", answer->explanation.c_str());
}

}  // namespace

int main() {
  std::printf("pdb quickstart: the paper's Figure 1 database\n\n");
  ProbDatabase engine(BuildFigure1());
  std::printf("%s\n", engine.database().ToString().c_str());

  std::printf("Boolean queries:\n");
  // Example 2.1: the inclusion constraint forall x,y (S(x,y) => R(x)).
  Ask(engine, "forall x forall y (S(x,y) => R(x))");
  // Its dual reading as a UCQ violation probe.
  Ask(engine, "exists x exists y (S(x,y) & !R(x))");
  // Hierarchical join (safe; lifted inference applies).
  Ask(engine, "R(x), S(x,y)");
  // Union of conjunctive queries.
  Ask(engine, "R(x), S(x,y) ; S(u,v)");

  std::printf("\nNon-Boolean query  Q(x) :- R(x), S(x,y):\n");
  ConjunctiveQuery cq({Atom("R", {Term::Var("x")}),
                       Atom("S", {Term::Var("x"), Term::Var("y")})});
  auto answers = engine.QueryWithAnswers(cq, {"x"});
  PDB_CHECK(answers.ok());
  for (size_t i = 0; i < answers->size(); ++i) {
    std::printf("  %s : %.6f\n",
                TupleToString(answers->tuple(i)).c_str(), answers->prob(i));
  }

  std::printf("\nSQL surface (SELECT PROB() / answer tuples):\n");
  auto sql_prob = engine.QuerySqlBoolean(
      "SELECT PROB() FROM R, S WHERE R.x = S.x");
  PDB_CHECK(sql_prob.ok());
  std::printf("  SELECT PROB() FROM R, S WHERE R.x = S.x -> %.6f\n",
              sql_prob->probability);
  auto sql_answers =
      engine.QuerySqlAnswers("SELECT R.x FROM R, S WHERE R.x = S.x");
  PDB_CHECK(sql_answers.ok());
  for (size_t i = 0; i < sql_answers->size(); ++i) {
    std::printf("  SELECT R.x ... row %s : %.6f\n",
                TupleToString(sql_answers->tuple(i)).c_str(),
                sql_answers->prob(i));
  }

  std::printf("\nMost influential tuples for R(x), S(x,y):\n");
  auto influential =
      engine.TopInfluences(*ParseFo("exists x exists y (R(x) & S(x,y))"), 3);
  PDB_CHECK(influential.ok());
  for (const auto& entry : *influential) {
    std::printf("  %s%s : influence %+0.4f\n", entry.relation.c_str(),
                TupleToString(entry.tuple).c_str(), entry.influence);
  }

  std::printf("\nA #P-hard query (falls back to grounded inference):\n");
  // Add T so H0's dual has matches.
  Relation t("T", Schema({{"y", ValueType::kString}}));
  PDB_CHECK(t.AddTuple({Value("b1")}, 0.5).ok());
  PDB_CHECK(t.AddTuple({Value("b4")}, 0.25).ok());
  PDB_CHECK(engine.database().AddRelation(std::move(t)).ok());
  Ask(engine, "R(x), S(x,y), T(y)");

  // 5. Observability: run traced queries through a session and read back
  // where the time went. The safe query stays in the lifted (polynomial)
  // regime; the #P-hard one shows the safety check failing and the
  // grounded DPLL solver taking over — the paper's dichotomy, visible in
  // the phase breakdown.
  std::printf("\nPer-phase traces (QueryOptions::trace = true):\n");
  Session session(&engine);
  QueryOptions traced;
  traced.trace = true;
  auto safe = session.Query("R(x), S(x,y)", traced);
  PDB_CHECK(safe.ok());
  std::printf("safe query R(x), S(x,y):\n%s\n",
              safe->trace->ToString().c_str());
  auto hard = session.Query("R(x), S(x,y), T(y)", traced);
  PDB_CHECK(hard.ok());
  std::printf("unsafe query R(x), S(x,y), T(y):\n%s\n",
              hard->trace->ToString().c_str());

  std::printf("Session metrics (Prometheus exposition, excerpt):\n");
  std::string metrics = session.MetricsText();
  // Print only the pdb_queries_* family to keep the quickstart short; a
  // real scrape endpoint would return the whole string.
  size_t pos = 0;
  while (pos < metrics.size()) {
    size_t eol = metrics.find('\n', pos);
    std::string line = metrics.substr(pos, eol - pos);
    if (line.find("pdb_queries") != std::string::npos) {
      std::printf("  %s\n", line.c_str());
    }
    pos = eol + 1;
  }

  std::printf("\nDone.\n");
  return 0;
}
