// Data cleaning / deduplication scenario (one of the motivating
// applications in the paper's introduction).
//
// A customer table was merged from two noisy sources; an entity-resolution
// model attached a probability to every candidate record and to every
// "same-entity" link. The engine answers business questions while carrying
// the uncertainty through relational processing:
//
//   Customer(id, city)   P = confidence that the record is real
//   SameAs(id, id')      P = confidence that the two ids are one entity
//   Order(id, amount)    P = confidence the order parse is correct
//
//   $ ./build/examples/data_cleaning

#include "util/check.h"
#include <cstdio>

#include "core/pdb.h"

using namespace pdb;

namespace {

Database BuildDirtyDatabase() {
  Database db;
  Relation customer(
      "Customer", Schema({{"id", ValueType::kInt}, {"city", ValueType::kString}}));
  // Two sources disagree on customer 2's existence; record 4 is a likely
  // duplicate of record 1.
  PDB_CHECK(customer.AddTuple({Value(1), Value("tacoma")}, 0.95).ok());
  PDB_CHECK(customer.AddTuple({Value(2), Value("spokane")}, 0.40).ok());
  PDB_CHECK(customer.AddTuple({Value(3), Value("tacoma")}, 0.85).ok());
  PDB_CHECK(customer.AddTuple({Value(4), Value("tacoma")}, 0.30).ok());
  PDB_CHECK(db.AddRelation(std::move(customer)).ok());

  Relation same("SameAs",
                Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}}));
  PDB_CHECK(same.AddTuple({Value(1), Value(4)}, 0.7).ok());
  PDB_CHECK(same.AddTuple({Value(2), Value(3)}, 0.1).ok());
  PDB_CHECK(db.AddRelation(std::move(same)).ok());

  Relation order("Order",
                 Schema({{"id", ValueType::kInt}, {"amount", ValueType::kInt}}));
  PDB_CHECK(order.AddTuple({Value(1), Value(120)}, 0.9).ok());
  PDB_CHECK(order.AddTuple({Value(2), Value(80)}, 0.6).ok());
  PDB_CHECK(order.AddTuple({Value(3), Value(250)}, 0.95).ok());
  PDB_CHECK(order.AddTuple({Value(4), Value(40)}, 0.5).ok());
  PDB_CHECK(db.AddRelation(std::move(order)).ok());
  return db;
}

void Ask(const ProbDatabase& engine, const char* label, const char* query) {
  auto answer = engine.Query(query);
  if (!answer.ok()) {
    std::printf("  %-52s error: %s\n", label,
                answer.status().ToString().c_str());
    return;
  }
  std::printf("  %-52s %.4f  (%s)\n", label, answer->probability,
              InferenceMethodToString(answer->method));
}

}  // namespace

int main() {
  std::printf("data_cleaning: querying an uncertain, deduplicated table\n\n");
  ProbDatabase engine(BuildDirtyDatabase());

  std::printf("Boolean checks:\n");
  Ask(engine, "some customer in tacoma has an order",
      "Customer(x, 'tacoma'), Order(x, a)");
  Ask(engine, "any suspected duplicate pair exists", "SameAs(x, y)");
  Ask(engine, "a duplicate pair where both records have orders",
      "SameAs(x, y), Order(x, a), Order(y, b)");

  std::printf("\nPer-city probability that at least one real customer "
              "ordered:\n");
  ConjunctiveQuery per_city({Atom("Customer", {Term::Var("x"), Term::Var("c")}),
                             Atom("Order", {Term::Var("x"), Term::Var("a")})});
  auto answers = engine.QueryWithAnswers(per_city, {"c"});
  PDB_CHECK(answers.ok());
  for (size_t i = 0; i < answers->size(); ++i) {
    std::printf("  %-10s %.4f\n", answers->tuple(i)[0].ToString().c_str(),
                answers->prob(i));
  }

  std::printf("\nPer-customer probability of being a confirmed duplicate:\n");
  ConjunctiveQuery dup({Atom("Customer", {Term::Var("x"), Term::Var("c")}),
                        Atom("SameAs", {Term::Var("x"), Term::Var("y")})});
  auto dup_answers = engine.QueryWithAnswers(dup, {"x"});
  PDB_CHECK(dup_answers.ok());
  for (size_t i = 0; i < dup_answers->size(); ++i) {
    std::printf("  id=%-7s %.4f\n",
                dup_answers->tuple(i)[0].ToString().c_str(),
                dup_answers->prob(i));
  }

  std::printf("\nDone.\n");
  return 0;
}
