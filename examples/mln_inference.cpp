// Markov Logic Network inference through the TID+constraint translation
// (paper §3, Proposition 3.1).
//
// Reproduces the paper's running example: the soft constraint
//
//   3.9   Manager(M, E) => HighlyCompensated(M)
//
// is compiled into a tuple-independent database with an auxiliary relation
// and a conditioning sentence Γ; conditional query answering then recovers
// exactly the MLN's semantics (verified against brute-force enumeration).
//
//   $ ./build/examples/mln_inference

#include "util/check.h"
#include <cstdio>

#include "logic/parser.h"
#include "mln/mln.h"
#include "mln/translate.h"

using namespace pdb;

int main() {
  std::printf("mln_inference: Manager/HighlyCompensated (weight 3.9)\n\n");

  Mln mln;
  PDB_CHECK(mln.AddPredicate("Manager", 2).ok());
  PDB_CHECK(mln.AddPredicate("HighlyCompensated", 1).ok());
  auto delta = ParseFo("Manager(m, e) => HighlyCompensated(m)");
  PDB_CHECK(delta.ok());
  PDB_CHECK(mln.AddConstraint(3.9, {"m", "e"}, *delta).ok());
  mln.SetDomain({Value("alice"), Value("bob")});

  auto translation = TranslateMln(mln);
  PDB_CHECK(translation.ok());
  std::printf("Translated TID (aux tuples at p = 1/w = %.4f):\n%s\n",
              1.0 / 3.9, translation->database.ToString().c_str());
  std::printf("Constraint sentence:\n  %s\n\n",
              translation->gamma->ToString().c_str());

  const char* queries[] = {
      "HighlyCompensated('alice')",
      "Manager('alice','bob')",
      "HighlyCompensated('alice') & Manager('alice','bob')",
      "exists m exists e (Manager(m,e) & HighlyCompensated(m))",
  };
  std::printf("%-56s %10s %12s\n", "query", "exact MLN", "via TID+Gamma");
  for (const char* text : queries) {
    auto q = ParseFo(text);
    PDB_CHECK(q.ok());
    auto exact = mln.ExactQueryProbability(*q);
    auto translated = TranslatedQueryProbability(*translation, *q);
    PDB_CHECK(exact.ok() && translated.ok());
    std::printf("%-56s %10.6f %12.6f\n", text, *exact, *translated);
  }

  // The paper's qualitative claim: the more employees someone manages, the
  // likelier they are highly compensated.
  std::printf("\nP(HighlyCompensated('alice') | #direct reports):\n");
  auto p0 = *mln.ExactQueryProbability(*ParseFo("HighlyCompensated('alice')"));
  auto joint1 = *mln.ExactQueryProbability(
      *ParseFo("HighlyCompensated('alice') & Manager('alice','bob')"));
  auto cond1 =
      joint1 / *mln.ExactQueryProbability(*ParseFo("Manager('alice','bob')"));
  auto joint2 = *mln.ExactQueryProbability(*ParseFo(
      "HighlyCompensated('alice') & Manager('alice','bob') & "
      "Manager('alice','alice')"));
  auto cond2 = joint2 / *mln.ExactQueryProbability(*ParseFo(
                            "Manager('alice','bob') & "
                            "Manager('alice','alice')"));
  std::printf("  unconditional: %.4f\n  1 report:      %.4f\n"
              "  2 reports:     %.4f\n",
              p0, cond1, cond2);

  std::printf("\nDone.\n");
  return 0;
}
