// Sensor fusion with richer uncertainty models: BID tables (block-disjoint
// alternatives, paper §1) and open-world semantics (paper §9).
//
// Each sensor reports at most one temperature value per tick — mutually
// exclusive alternatives with a residual "no reading" probability — and the
// sensor registry is open-world: sensors we never heard about may exist
// with probability up to λ.
//
//   $ ./build/examples/sensor_fusion

#include "util/check.h"
#include <cstdio>

#include "bid/bid.h"
#include "logic/parser.h"
#include "openworld/openworld.h"

using namespace pdb;

namespace {

Ucq UcqOf(const char* text) {
  auto fo = ParseUcqShorthand(text);
  PDB_CHECK(fo.ok());
  auto ucq = FoToUcq(*fo);
  PDB_CHECK(ucq.ok());
  return *ucq;
}

}  // namespace

int main() {
  std::printf("sensor_fusion: BID alternatives + open-world registry\n\n");

  // --- BID: each sensor's reading is one of several exclusive values. ---
  BidDatabase bid;
  BidRelation reading("Reading", Schema::Anonymous(2), /*key_arity=*/1);
  // Sensor 1: 40 with 0.6, 41 with 0.3, silent with 0.1.
  PDB_CHECK(reading.AddTuple({Value(1), Value(40)}, 0.6).ok());
  PDB_CHECK(reading.AddTuple({Value(1), Value(41)}, 0.3).ok());
  // Sensor 2: 41 with 0.5, 42 with 0.2.
  PDB_CHECK(reading.AddTuple({Value(2), Value(41)}, 0.5).ok());
  PDB_CHECK(reading.AddTuple({Value(2), Value(42)}, 0.2).ok());
  PDB_CHECK(bid.AddRelation(std::move(reading)).ok());

  struct Probe {
    const char* label;
    const char* query;
  };
  const Probe probes[] = {
      {"some sensor reads 41", "Reading(s, 41)"},
      {"sensors 1 and 2 agree on 41",
       "Reading(1, 41), Reading(2, 41)"},
      {"any reading at all", "Reading(s, v)"},
  };
  std::printf("BID queries (chain encoding == per-block brute force):\n");
  for (const Probe& probe : probes) {
    Ucq q = UcqOf(probe.query);
    double fast = *bid.QueryProbability(q);
    double brute = *bid.QueryProbabilityBruteForce(q);
    std::printf("  %-36s %.6f  (brute force %.6f)\n", probe.label, fast,
                brute);
  }
  // Exclusivity: one sensor cannot read two values.
  Ucq conflict = UcqOf("Reading(1, 40), Reading(1, 41)");
  std::printf("  %-36s %.6f  (exclusive alternatives)\n",
              "sensor 1 reads 40 AND 41", *bid.QueryProbability(conflict));

  // --- Open world: unknown sensors may exist with prob <= lambda. ---
  std::printf("\nOpen-world registry (monotone query => exact interval):\n");
  Database registry;
  Relation sensor("Sensor", Schema::Anonymous(1));
  Relation calibrated("Calibrated", Schema::Anonymous(1));
  PDB_CHECK(sensor.AddTuple({Value(1)}, 0.9).ok());
  PDB_CHECK(sensor.AddTuple({Value(2)}, 0.8).ok());
  PDB_CHECK(calibrated.AddTuple({Value(1)}, 0.7).ok());
  PDB_CHECK(registry.AddRelation(std::move(sensor)).ok());
  PDB_CHECK(registry.AddRelation(std::move(calibrated)).ok());
  Ucq q = UcqOf("Sensor(s), Calibrated(s)");
  std::printf("  query: some calibrated sensor exists\n");
  for (double lambda : {0.0, 0.05, 0.2}) {
    OpenWorldDatabase open(registry, lambda);
    auto interval = open.QueryInterval(q);
    PDB_CHECK(interval.ok());
    std::printf("  lambda = %-5.2f  P in [%.6f, %.6f]\n", lambda,
                interval->lower, interval->upper);
  }

  std::printf("\nDone.\n");
  return 0;
}
