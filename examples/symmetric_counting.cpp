// Symmetric databases and lifted counting for FO² (paper §8).
//
// Symmetric databases model the grounded networks of statistical relational
// models: every possible tuple of a relation has the same probability. For
// FO² sentences, PQE is polynomial in the domain size (Theorem 8.1) — far
// beyond what grounded inference can touch.
//
//   $ ./build/examples/symmetric_counting

#include "util/check.h"
#include <chrono>
#include <cstdio>

#include "logic/parser.h"
#include "symmetric/fo2.h"
#include "symmetric/symmetric.h"

using namespace pdb;

int main() {
  std::printf("symmetric_counting: FO2 lifted counting (Theorem 8.1)\n\n");

  auto h0 = ParseFo("forall x forall y (R(x) | S(x,y) | T(y))");
  PDB_CHECK(h0.ok());

  // H0 over symmetric databases: the closed form and the generic FO2 cell
  // algorithm agree exactly (as rationals).
  std::printf("p(H0) with pR = 1/2, pS = 3/4, pT = 1/4:\n");
  std::printf("%6s %22s %22s\n", "n", "closed form", "FO2 cell algorithm");
  for (size_t n : {2u, 4u, 8u, 16u}) {
    SymmetricDatabase sym({{"R", 1, 0.5}, {"S", 2, 0.75}, {"T", 1, 0.25}}, n);
    BigRational closed = H0SymmetricClosedForm(0.5, 0.75, 0.25, n);
    auto cells = SymmetricPqe(*h0, sym);
    PDB_CHECK(cells.ok());
    PDB_CHECK(closed == *cells);  // exact rational equality
    std::printf("%6zu %22.12g %22.12g\n", n, closed.ToDouble(),
                cells->ToDouble());
  }

  // Scaling: large domains stay easy (polynomial), where grounded methods
  // would need 2^(n^2 + 2n) world enumeration.
  std::printf("\nLarge domains (scaled-float evaluation):\n");
  for (size_t n : {50u, 100u, 200u}) {
    auto start = std::chrono::steady_clock::now();
    SymmetricDatabase sym({{"R", 1, 0.5}, {"S", 2, 0.9}, {"T", 1, 0.5}}, n);
    auto p = SymmetricPqeApprox(*h0, sym);
    PDB_CHECK(p.ok());
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    std::printf("  n=%-5zu p = %.6g   (%.1f ms; 2^%zu possible worlds)\n",
                n, *p, ms, n * n + 2 * n);
  }

  // A sentence with an existential quantifier: skolemization with negative
  // weights (Van den Broeck et al.), invisible to the caller.
  std::printf("\nforall x exists y S(x,y)  ('no isolated node'):\n");
  auto fe = ParseFo("forall x exists y S(x,y)");
  for (size_t n : {2u, 5u, 10u, 30u}) {
    SymmetricDatabase sym({{"S", 2, 0.3}}, n);
    auto p = SymmetricPqe(*fe, sym);
    PDB_CHECK(p.ok());
    std::printf("  n=%-4zu p = %.6f\n", n, p->ToDouble());
  }

  // Friends-and-smokers style soft structure, purely universally
  // quantified: smokers only befriend smokers.
  std::printf("\nforall x forall y (Smokes(x) & Friends(x,y) => "
              "Smokes(y)):\n");
  auto fs = ParseFo(
      "forall x forall y ((Smokes(x) & Friends(x,y)) => Smokes(y))");
  PDB_CHECK(fs.ok());
  for (size_t n : {2u, 4u, 8u, 16u}) {
    SymmetricDatabase sym({{"Smokes", 1, 0.3}, {"Friends", 2, 0.2}}, n);
    auto p = SymmetricPqe(*fs, sym);
    PDB_CHECK(p.ok());
    std::printf("  n=%-4zu p = %.6f\n", n, p->ToDouble());
  }

  std::printf("\nDone.\n");
  return 0;
}
