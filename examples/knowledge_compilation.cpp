// Knowledge compilation walkthrough (paper §7, Figure 2).
//
// Builds the two circuits of Figure 2 by hand, compiles query lineages into
// OBDDs and decision-DNNFs, and shows the size gap between hierarchical and
// non-hierarchical queries that Theorem 7.1 predicts.
//
//   $ ./build/examples/knowledge_compilation

#include "util/check.h"
#include <cstdio>

#include "boolean/lineage.h"
#include "kc/circuit.h"
#include "kc/obdd.h"
#include "kc/order.h"
#include "kc/trace_compiler.h"
#include "logic/parser.h"
#include "wmc/enumeration.h"

using namespace pdb;

namespace {

Database TwoLevelDb(size_t n, size_t fanout) {
  Database db;
  Relation r("R", Schema::Anonymous(1));
  Relation s("S", Schema::Anonymous(2));
  for (size_t i = 1; i <= n; ++i) {
    PDB_CHECK(r.AddTuple({Value(static_cast<int64_t>(i))}, 0.5).ok());
    for (size_t j = 1; j <= fanout; ++j) {
      PDB_CHECK(s.AddTuple({Value(static_cast<int64_t>(i)),
                            Value(static_cast<int64_t>(j))},
                           0.5)
                    .ok());
    }
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  return db;
}

Database H0Db(size_t n) {
  Database db = TwoLevelDb(n, n);
  Relation t("T", Schema::Anonymous(1));
  for (size_t i = 1; i <= n; ++i) {
    PDB_CHECK(t.AddTuple({Value(static_cast<int64_t>(i))}, 0.5).ok());
  }
  PDB_CHECK(db.AddRelation(std::move(t)).ok());
  return db;
}

}  // namespace

int main() {
  std::printf("knowledge_compilation: circuits from paper §7\n\n");

  // --- Figure 2(a): an FBDD for (!X)YZ | XY | XZ. ---
  {
    Circuit c;
    Circuit::Ref z = c.Decision(2, c.False(), c.True());
    Circuit::Ref yz = c.Decision(1, c.False(), z);
    Circuit::Ref y_or_z = c.Decision(1, z, c.True());
    Circuit::Ref root = c.Decision(0, yz, y_or_z);
    PDB_CHECK(c.ValidateFbdd(root).ok());
    std::printf("Figure 2(a) FBDD for (!X)YZ | XY | XZ: %zu nodes, "
                "model count %s\n",
                c.Size(root), c.CountModels(root).ToString().c_str());
  }

  // --- Figure 2(b): a decision-DNNF for (!X)YZU | XYZ | XZU. ---
  {
    Circuit c;
    Circuit::Ref y = c.Decision(1, c.False(), c.True());
    Circuit::Ref z = c.Decision(2, c.False(), c.True());
    Circuit::Ref u = c.Decision(3, c.False(), c.True());
    Circuit::Ref x0 = c.And({y, z, u});
    Circuit::Ref x1 = c.And({z, c.Decision(1, u, c.True())});
    Circuit::Ref root = c.Decision(0, x0, x1);
    PDB_CHECK(c.ValidateDecisionDnnf(root).ok());
    std::printf("Figure 2(b) decision-DNNF for (!X)YZU | XYZ | XZU: %zu "
                "nodes, model count %s\n\n",
                c.Size(root), c.CountModels(root).ToString().c_str());
  }

  // --- OBDD sizes: Theorem 7.1(i). ---
  std::printf("OBDD size of lineage, hierarchical R(x),S(x,y) vs "
              "non-hierarchical R(x),S(x,y),T(y):\n");
  std::printf("%6s %18s %22s\n", "n", "hierarchical", "non-hierarchical");
  auto safe = ParseUcqShorthand("R(x), S(x,y)");
  auto hard = ParseUcqShorthand("R(x), S(x,y), T(y)");
  for (size_t n : {2u, 4u, 6u, 8u, 10u}) {
    FormulaManager mgr1;
    Database db1 = TwoLevelDb(n, 2);
    auto lin1 = BuildLineage(*safe, db1, &mgr1);
    PDB_CHECK(lin1.ok());
    Obdd obdd1(HierarchicalOrder(*lin1, db1));
    size_t size1 = obdd1.Size(*obdd1.Compile(&mgr1, lin1->root));

    FormulaManager mgr2;
    Database db2 = H0Db(n);
    auto lin2 = BuildLineage(*hard, db2, &mgr2);
    PDB_CHECK(lin2.ok());
    Obdd obdd2(HierarchicalOrder(*lin2, db2));
    size_t size2 = obdd2.Size(*obdd2.Compile(&mgr2, lin2->root));
    std::printf("%6zu %18zu %22zu\n", n, size1, size2);
  }

  // --- decision-DNNF from a DPLL trace. ---
  std::printf("\ndecision-DNNF compiled from the DPLL trace of the H0 "
              "lineage:\n");
  for (size_t n : {2u, 3u, 4u, 5u}) {
    FormulaManager mgr;
    Database db = H0Db(n);
    auto lineage = BuildLineage(*hard, db, &mgr);
    PDB_CHECK(lineage.ok());
    auto compiled = CompileToDecisionDnnf(
        &mgr, lineage->root, WeightsFromProbabilities(lineage->probs));
    PDB_CHECK(compiled.ok());
    std::printf("  n=%zu: %5zu nodes, %6llu decisions, P = %.6f\n", n,
                compiled->circuit.Size(compiled->root),
                static_cast<unsigned long long>(compiled->stats.decisions),
                compiled->probability);
  }

  std::printf("\nDone.\n");
  return 0;
}
