/// \file pdbd_main.cc
/// \brief pdbd: serve a probabilistic database over HTTP.
///
/// Usage:
///   pdbd [--host H] [--port P] [--demo [N]]
///        [--table NAME SCHEMA FILE.csv]...
///        [--max-concurrent N] [--max-queue N] [--queue-timeout-ms N]
///        [--max-deadline-ms N] [--drain-timeout-ms N]
///
/// SCHEMA is a comma-separated attribute list "name:type" with type one of
/// int, double, string, e.g. "src:int,dst:int". CSV files carry the data
/// columns in schema order plus a final probability column (see
/// storage/csv.h).
///
/// `--demo [N]` loads the synthetic bipartite database used by the test
/// suite (relations R(x), S(x,y), T(y), N tuples wide) so the server can
/// run without any data files — CI's smoke test and the quickstart use it.
///
/// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, drain
/// in-flight queries, cancel stragglers, exit 0.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/pdb.h"
#include "server/server.h"
#include "storage/csv.h"
#include "util/string_util.h"

namespace {

// Signal handlers may only touch lock-free state; the main thread polls
// this flag and runs the actual (lock-taking) shutdown sequence.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleSignal(int) { g_shutdown_requested = 1; }

/// Parses "name:type,name:type,..." into a Schema.
pdb::Result<pdb::Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<pdb::Attribute> attributes;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string field = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    size_t colon = field.find(':');
    if (field.empty() || colon == std::string::npos || colon == 0) {
      return pdb::Status::InvalidArgument(pdb::StrFormat(
          "bad schema field '%s' (want name:type)", field.c_str()));
    }
    pdb::Attribute attr;
    attr.name = field.substr(0, colon);
    std::string type = field.substr(colon + 1);
    if (type == "int") {
      attr.type = pdb::ValueType::kInt;
    } else if (type == "double") {
      attr.type = pdb::ValueType::kDouble;
    } else if (type == "string") {
      attr.type = pdb::ValueType::kString;
    } else {
      return pdb::Status::InvalidArgument(pdb::StrFormat(
          "bad attribute type '%s' (want int|double|string)", type.c_str()));
    }
    attributes.push_back(std::move(attr));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (attributes.empty()) {
    return pdb::Status::InvalidArgument("empty schema");
  }
  return pdb::Schema(std::move(attributes));
}

/// The synthetic bipartite demo database: R(x), S(x,y), T(y) with smoothly
/// varying probabilities — large enough that "R(x), S(x,y), T(y)" exercises
/// the full inference pipeline, small enough to ground instantly.
pdb::Status LoadDemo(pdb::ProbDatabase* db, int n) {
  pdb::Relation r("R", pdb::Schema({{"x", pdb::ValueType::kInt}}));
  pdb::Relation t("T", pdb::Schema({{"y", pdb::ValueType::kInt}}));
  pdb::Relation s("S", pdb::Schema({{"x", pdb::ValueType::kInt},
                                    {"y", pdb::ValueType::kInt}}));
  for (int i = 0; i < n; ++i) {
    PDB_RETURN_NOT_OK(r.AddTuple({int64_t{i}}, 0.3 + 0.4 * i / n));
    PDB_RETURN_NOT_OK(t.AddTuple({int64_t{i}}, 0.2 + 0.5 * i / n));
    for (int j = 0; j < n; ++j) {
      if ((i + j) % 2 == 0) {
        PDB_RETURN_NOT_OK(
            s.AddTuple({int64_t{i}, int64_t{j}}, 0.5 + 0.3 * j / n));
      }
    }
  }
  PDB_RETURN_NOT_OK(db->AddRelation(std::move(r)));
  PDB_RETURN_NOT_OK(db->AddRelation(std::move(s)));
  PDB_RETURN_NOT_OK(db->AddRelation(std::move(t)));
  return pdb::Status::OK();
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port P] [--demo [N]]\n"
      "          [--table NAME SCHEMA FILE.csv]...\n"
      "          [--max-concurrent N] [--max-queue N] "
      "[--queue-timeout-ms N]\n"
      "          [--max-deadline-ms N] [--drain-timeout-ms N]\n"
      "SCHEMA example: \"src:int,dst:int\" (CSV rows end with a "
      "probability column)\n",
      argv0);
  return 2;
}

bool ParseUint(const char* text, uint64_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pdb::ProbDatabase db;
  pdb::ServerOptions options;
  bool loaded_any = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_uint = [&](uint64_t* out) {
      return i + 1 < argc && ParseUint(argv[++i], out);
    };
    uint64_t value = 0;
    if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port") {
      if (!next_uint(&value) || value > 65535) return Usage(argv[0]);
      options.port = static_cast<uint16_t>(value);
    } else if (arg == "--demo") {
      uint64_t n = 12;
      // Optional size operand: "--demo 20".
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        if (!ParseUint(argv[++i], &n) || n == 0 || n > 10000) {
          return Usage(argv[0]);
        }
      }
      pdb::Status status = LoadDemo(&db, static_cast<int>(n));
      if (!status.ok()) {
        std::fprintf(stderr, "pdbd: demo load failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      loaded_any = true;
    } else if (arg == "--table" && i + 3 < argc) {
      std::string name = argv[++i];
      std::string schema_spec = argv[++i];
      std::string path = argv[++i];
      auto schema = ParseSchemaSpec(schema_spec);
      if (!schema.ok()) {
        std::fprintf(stderr, "pdbd: table %s: %s\n", name.c_str(),
                     schema.status().ToString().c_str());
        return 1;
      }
      auto relation = pdb::RelationFromCsvFile(name, *schema, path);
      if (!relation.ok()) {
        std::fprintf(stderr, "pdbd: loading %s from %s: %s\n", name.c_str(),
                     path.c_str(), relation.status().ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "pdbd: loaded %s (%zu tuples) from %s\n",
                   name.c_str(), relation->size(), path.c_str());
      pdb::Status status = db.AddRelation(std::move(*relation));
      if (!status.ok()) {
        std::fprintf(stderr, "pdbd: %s\n", status.ToString().c_str());
        return 1;
      }
      loaded_any = true;
    } else if (arg == "--max-concurrent") {
      if (!next_uint(&value)) return Usage(argv[0]);
      options.admission.max_concurrent = static_cast<size_t>(value);
    } else if (arg == "--max-queue") {
      if (!next_uint(&value)) return Usage(argv[0]);
      options.admission.max_queue = static_cast<size_t>(value);
    } else if (arg == "--queue-timeout-ms") {
      if (!next_uint(&value)) return Usage(argv[0]);
      options.admission.queue_timeout_ms = value;
    } else if (arg == "--max-deadline-ms") {
      if (!next_uint(&value)) return Usage(argv[0]);
      options.max_deadline_ms = value;
    } else if (arg == "--drain-timeout-ms") {
      if (!next_uint(&value)) return Usage(argv[0]);
      options.drain_timeout_ms = value;
    } else {
      return Usage(argv[0]);
    }
  }

  if (!loaded_any) {
    std::fprintf(stderr,
                 "pdbd: no data loaded (use --demo or --table); serving an "
                 "empty database\n");
  }

  pdb::PdbServer server(&db, options);
  pdb::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "pdbd: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "pdbd: listening on %s:%u\n", options.host.c_str(),
               static_cast<unsigned>(server.port()));
  std::fflush(stderr);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_shutdown_requested) {
    // The server runs on its own threads; the main thread only waits for a
    // shutdown signal. pause() wakes on any handled signal.
    ::pause();
  }
  std::fprintf(stderr, "pdbd: shutting down (draining in-flight queries)\n");
  server.Shutdown();
  std::fprintf(stderr, "pdbd: bye\n");
  return 0;
}
