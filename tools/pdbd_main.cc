/// \file pdbd_main.cc
/// \brief pdbd: serve a probabilistic database over HTTP.
///
/// Usage:
///   pdbd [--host H] [--port P] [--demo [N]]
///        [--table NAME SCHEMA FILE.csv]...
///        [--data-dir DIR] [--sync-mode always|none]
///        [--checkpoint-every-n N] [--retain-checkpoints N]
///        [--group-commit-window-us N] [--wmc-spill-ms N]
///        [--max-concurrent N] [--max-queue N] [--queue-timeout-ms N]
///        [--max-per-client N]
///        [--max-deadline-ms N] [--drain-timeout-ms N]
///        [--slow-query-ms N] [--log-file PATH]
///
/// SCHEMA is a comma-separated attribute list "name:type" with type one of
/// int, double, string, e.g. "src:int,dst:int". CSV files carry the data
/// columns in schema order plus a final probability column (see
/// storage/csv.h).
///
/// `--demo [N]` loads the synthetic bipartite database used by the test
/// suite (relations R(x), S(x,y), T(y), N tuples wide) so the server can
/// run without any data files — CI's smoke test and the quickstart use it.
///
/// `--data-dir DIR` makes the database durable (storage/durable_db.h):
/// tables recovered from DIR on boot, every load write-ahead logged, and
/// the shared WMC cache persisted to a sidecar store — periodically (every
/// `--wmc-spill-ms`, default 1000; 0 disables) and on shutdown — so even a
/// kill -9'd server restarts with its tables and a warm cache. `--demo` /
/// `--table` loads are skipped for relations that already recovered, so
/// restarting with identical flags is idempotent. `--sync-mode always`
/// (default) fsyncs per mutation; `none` trades crash durability of the
/// latest writes for bulk-load speed. `--checkpoint-every-n` snapshots and
/// compacts the log every N mutations (a checkpoint is always written on
/// clean shutdown), and `--retain-checkpoints` (default 1) keeps that many
/// newest snapshots — plus the WAL segments needed to recover from the
/// oldest one — when the checkpoint garbage-collects old files.
///
/// With a durable store, `POST /ingest?relation=R[&schema=...]` streams a
/// CSV body straight into WriteBatches committed through the group-commit
/// WAL, and checkpoints run on a background thread off the write path so
/// `--checkpoint-every-n` does not stall writers.
/// `--group-commit-window-us N` trades a bounded commit delay for larger
/// sync-sharing groups under concurrent writers (the PostgreSQL
/// commit_delay shape; 0, the default, commits immediately).
/// `--max-per-client N`
/// caps how many requests one X-Client-Id may have admitted or queued at
/// once (0, the default, is unlimited).
///
/// `--slow-query-ms N` captures every statement at or above N ms — full
/// per-phase trace plus an EXPLAIN payload — into the ring served by
/// GET /debug/slowlog. `--log-file PATH` appends the structured
/// JSON-lines event log (server lifecycle + slow queries) to PATH.
///
/// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, drain
/// in-flight queries, cancel stragglers, spill + checkpoint (when
/// durable), exit 0.

#include <ctime>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pdb.h"
#include "server/server.h"
#include "storage/csv.h"
#include "storage/durable_db.h"
#include "util/string_util.h"

namespace {

// Signal handlers may only touch lock-free state; the main thread polls
// this flag and runs the actual (lock-taking) shutdown sequence.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleSignal(int) { g_shutdown_requested = 1; }

/// The synthetic bipartite demo database: R(x), S(x,y), T(y) with smoothly
/// varying probabilities — large enough that "R(x), S(x,y), T(y)" exercises
/// the full inference pipeline, small enough to ground instantly.
pdb::Result<std::vector<pdb::Relation>> BuildDemo(int n) {
  pdb::Relation r("R", pdb::Schema({{"x", pdb::ValueType::kInt}}));
  pdb::Relation t("T", pdb::Schema({{"y", pdb::ValueType::kInt}}));
  pdb::Relation s("S", pdb::Schema({{"x", pdb::ValueType::kInt},
                                    {"y", pdb::ValueType::kInt}}));
  for (int i = 0; i < n; ++i) {
    PDB_RETURN_NOT_OK(r.AddTuple({int64_t{i}}, 0.3 + 0.4 * i / n));
    PDB_RETURN_NOT_OK(t.AddTuple({int64_t{i}}, 0.2 + 0.5 * i / n));
    for (int j = 0; j < n; ++j) {
      if ((i + j) % 2 == 0) {
        PDB_RETURN_NOT_OK(
            s.AddTuple({int64_t{i}, int64_t{j}}, 0.5 + 0.3 * j / n));
      }
    }
  }
  std::vector<pdb::Relation> relations;
  relations.push_back(std::move(r));
  relations.push_back(std::move(s));
  relations.push_back(std::move(t));
  return relations;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port P] [--demo [N]]\n"
      "          [--table NAME SCHEMA FILE.csv]...\n"
      "          [--data-dir DIR] [--sync-mode always|none]\n"
      "          [--checkpoint-every-n N] [--retain-checkpoints N]\n"
      "          [--group-commit-window-us N] [--wmc-spill-ms N]\n"
      "          [--max-concurrent N] [--max-queue N] "
      "[--queue-timeout-ms N] [--max-per-client N]\n"
      "          [--max-deadline-ms N] [--drain-timeout-ms N]\n"
      "          [--slow-query-ms N] [--log-file PATH]\n"
      "SCHEMA example: \"src:int,dst:int\" (CSV rows end with a "
      "probability column)\n",
      argv0);
  return 2;
}

bool ParseUint(const char* text, uint64_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

/// One deferred --table load (data may only be added after the durable
/// store has recovered, whatever the flag order).
struct TableSpec {
  std::string name;
  std::string schema;
  std::string path;
};

}  // namespace

int main(int argc, char** argv) {
  pdb::ServerOptions options;
  std::string data_dir;
  pdb::DurableOptions durable_options;
  uint64_t wmc_spill_ms = 1000;
  std::optional<uint64_t> demo_n;
  std::vector<TableSpec> tables;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_uint = [&](uint64_t* out) {
      return i + 1 < argc && ParseUint(argv[++i], out);
    };
    uint64_t value = 0;
    if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port") {
      if (!next_uint(&value) || value > 65535) return Usage(argv[0]);
      options.port = static_cast<uint16_t>(value);
    } else if (arg == "--demo") {
      uint64_t n = 12;
      // Optional size operand: "--demo 20".
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        if (!ParseUint(argv[++i], &n) || n == 0 || n > 10000) {
          return Usage(argv[0]);
        }
      }
      demo_n = n;
    } else if (arg == "--table" && i + 3 < argc) {
      TableSpec spec;
      spec.name = argv[++i];
      spec.schema = argv[++i];
      spec.path = argv[++i];
      tables.push_back(std::move(spec));
    } else if (arg == "--data-dir" && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (arg == "--sync-mode" && i + 1 < argc) {
      auto mode = pdb::ParseSyncMode(argv[++i]);
      if (!mode.ok()) {
        std::fprintf(stderr, "pdbd: %s\n", mode.status().ToString().c_str());
        return Usage(argv[0]);
      }
      durable_options.sync_mode = *mode;
    } else if (arg == "--checkpoint-every-n") {
      if (!next_uint(&value)) return Usage(argv[0]);
      durable_options.checkpoint_every_n = value;
    } else if (arg == "--retain-checkpoints") {
      if (!next_uint(&value) || value == 0) return Usage(argv[0]);
      durable_options.retain_checkpoints = static_cast<size_t>(value);
    } else if (arg == "--group-commit-window-us") {
      if (!next_uint(&value) || value > 1'000'000) return Usage(argv[0]);
      durable_options.group_commit_window_us = static_cast<uint32_t>(value);
    } else if (arg == "--wmc-spill-ms") {
      if (!next_uint(&value)) return Usage(argv[0]);
      wmc_spill_ms = value;
    } else if (arg == "--max-concurrent") {
      if (!next_uint(&value)) return Usage(argv[0]);
      options.admission.max_concurrent = static_cast<size_t>(value);
    } else if (arg == "--max-queue") {
      if (!next_uint(&value)) return Usage(argv[0]);
      options.admission.max_queue = static_cast<size_t>(value);
    } else if (arg == "--queue-timeout-ms") {
      if (!next_uint(&value)) return Usage(argv[0]);
      options.admission.queue_timeout_ms = value;
    } else if (arg == "--max-per-client") {
      if (!next_uint(&value)) return Usage(argv[0]);
      options.admission.max_per_client = static_cast<size_t>(value);
    } else if (arg == "--max-deadline-ms") {
      if (!next_uint(&value)) return Usage(argv[0]);
      options.max_deadline_ms = value;
    } else if (arg == "--drain-timeout-ms") {
      if (!next_uint(&value)) return Usage(argv[0]);
      options.drain_timeout_ms = value;
    } else if (arg == "--slow-query-ms") {
      if (!next_uint(&value)) return Usage(argv[0]);
      options.slow_query_ms = value;
    } else if (arg == "--log-file" && i + 1 < argc) {
      options.log_file = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  // With --data-dir, recover tables and the warm WMC cache before any
  // load; without it, the historical in-memory-only behaviour.
  pdb::ProbDatabase memory_db;
  std::unique_ptr<pdb::DurableDatabase> durable;
  std::shared_ptr<pdb::WmcCache> warm_cache;
  pdb::ProbDatabase* db = &memory_db;
  if (!data_dir.empty()) {
    // The server opts into off-write-path checkpointing: a threshold crossed
    // by a commit wakes the checkpoint thread instead of running the
    // snapshot inline, so writers only pay for the brief fence.
    durable_options.background_checkpoints = true;
    auto opened = pdb::DurableDatabase::Open(data_dir, durable_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "pdbd: opening %s: %s\n", data_dir.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    durable = std::move(*opened);
    db = &durable->pdb();
    const pdb::RecoveryStats& rec = durable->recovery_stats();
    std::fprintf(stderr,
                 "pdbd: recovered %s: %zu relations, %zu tuples "
                 "(snapshot seq %llu, %llu WAL records replayed%s)\n",
                 data_dir.c_str(), db->database().RelationNames().size(),
                 db->database().TupleCount(),
                 static_cast<unsigned long long>(rec.snapshot_seq),
                 static_cast<unsigned long long>(rec.replayed_records),
                 rec.tail_truncated ? ", torn tail truncated" : "");

    warm_cache = std::make_shared<pdb::WmcCache>();
    auto loaded = durable->LoadWmcCache(warm_cache.get());
    if (!loaded.ok()) {
      std::fprintf(stderr, "pdbd: component store unreadable (%s); "
                   "starting with a cold cache\n",
                   loaded.status().ToString().c_str());
    } else if (*loaded > 0) {
      std::fprintf(stderr, "pdbd: warm WMC cache: %llu entries reloaded\n",
                   static_cast<unsigned long long>(*loaded));
    }
    options.sessions.session.external_wmc_cache = warm_cache;
    options.extra_metrics = &durable->metrics();
    options.data_dir_mode = "durable";
    options.io_trace = &durable->io_trace();
    options.durable = durable.get();
  }

  // A mutation goes through the WAL when durable; relations that already
  // recovered are skipped so a restart with identical flags is idempotent.
  auto add_relation = [&](pdb::Relation relation) -> pdb::Status {
    if (db->database().HasRelation(relation.name())) {
      std::fprintf(stderr, "pdbd: %s already recovered from %s; skipping\n",
                   relation.name().c_str(), data_dir.c_str());
      return pdb::Status::OK();
    }
    if (durable) return durable->AddRelation(std::move(relation));
    return db->AddRelation(std::move(relation));
  };

  bool loaded_any = durable && !db->database().RelationNames().empty();
  if (demo_n.has_value()) {
    auto demo = BuildDemo(static_cast<int>(*demo_n));
    pdb::Status status = demo.ok() ? pdb::Status::OK() : demo.status();
    if (status.ok()) {
      for (pdb::Relation& relation : *demo) {
        status = add_relation(std::move(relation));
        if (!status.ok()) break;
      }
    }
    if (!status.ok()) {
      std::fprintf(stderr, "pdbd: demo load failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    loaded_any = true;
  }
  for (const TableSpec& spec : tables) {
    auto schema = pdb::ParseSchemaSpec(spec.schema);
    if (!schema.ok()) {
      std::fprintf(stderr, "pdbd: table %s: %s\n", spec.name.c_str(),
                   schema.status().ToString().c_str());
      return 1;
    }
    auto relation = pdb::RelationFromCsvFile(spec.name, *schema, spec.path);
    if (!relation.ok()) {
      std::fprintf(stderr, "pdbd: loading %s from %s: %s\n",
                   spec.name.c_str(), spec.path.c_str(),
                   relation.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "pdbd: loaded %s (%zu tuples) from %s\n",
                 spec.name.c_str(), relation->size(), spec.path.c_str());
    pdb::Status status = add_relation(std::move(*relation));
    if (!status.ok()) {
      std::fprintf(stderr, "pdbd: %s\n", status.ToString().c_str());
      return 1;
    }
    loaded_any = true;
  }

  if (!loaded_any) {
    std::fprintf(stderr,
                 "pdbd: no data loaded (use --demo or --table); serving an "
                 "empty database\n");
  }

  pdb::PdbServer server(db, options);
  pdb::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "pdbd: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "pdbd: listening on %s:%u\n", options.host.c_str(),
               static_cast<unsigned>(server.port()));
  std::fflush(stderr);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // The server runs on its own threads; the main thread ticks every 100 ms
  // waiting for a shutdown signal and, when durable, rewrites the
  // component store whenever new WMC entries appeared — so even a kill -9
  // restarts with a warm cache as of the last spill.
  const uint64_t kTickMs = 100;
  uint64_t since_spill_ms = 0;
  uint64_t spilled_inserts = 0;
  while (!g_shutdown_requested) {
    struct timespec tick = {0, static_cast<long>(kTickMs) * 1000000L};
    ::nanosleep(&tick, nullptr);
    since_spill_ms += kTickMs;
    if (durable && wmc_spill_ms > 0 && since_spill_ms >= wmc_spill_ms) {
      since_spill_ms = 0;
      uint64_t inserts = warm_cache->stats().inserts;
      if (inserts != spilled_inserts) {
        pdb::Status spilled = durable->SpillWmcCache(*warm_cache);
        if (spilled.ok()) {
          spilled_inserts = inserts;
        } else {
          std::fprintf(stderr, "pdbd: WMC spill failed: %s\n",
                       spilled.ToString().c_str());
        }
      }
    }
  }
  std::fprintf(stderr, "pdbd: shutting down (draining in-flight queries)\n");
  server.Shutdown();
  if (durable) {
    // Final spill + checkpoint: the next open recovers from the snapshot
    // alone, with a warm cache current to the last query served.
    if (warm_cache) {
      pdb::Status spilled = durable->SpillWmcCache(*warm_cache);
      if (!spilled.ok()) {
        std::fprintf(stderr, "pdbd: final WMC spill failed: %s\n",
                     spilled.ToString().c_str());
      }
    }
    pdb::Status checkpointed = durable->Checkpoint();
    if (!checkpointed.ok()) {
      std::fprintf(stderr, "pdbd: shutdown checkpoint failed: %s\n",
                   checkpointed.ToString().c_str());
    }
    pdb::Status closed = durable->Close();
    if (!closed.ok()) {
      std::fprintf(stderr, "pdbd: close failed: %s\n",
                   closed.ToString().c_str());
    }
  }
  std::fprintf(stderr, "pdbd: bye\n");
  return 0;
}
