// M1-M4 — substrate microbenchmarks: lineage construction throughput,
// formula-manager operations, OBDD apply, DPLL cache behaviour, big-number
// arithmetic, and parallel Monte Carlo sampling throughput across thread
// counts. These watch the plumbing the experiment benches stand on.
//
// Besides the console table, every run is exported to BENCH_micro.json
// (name, wall_ms, samples_per_sec, threads) in the working directory so the
// perf trajectory is trackable across PRs.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "boolean/lineage.h"
#include "core/session.h"
#include "exec/context.h"
#include "exec/thread_pool.h"
#include "kc/obdd.h"
#include "kc/order.h"
#include "logic/parser.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "storage/durable_db.h"
#include "storage/env.h"
#include "storage/index_cache.h"
#include "storage/write_batch.h"
#include "util/big_int.h"
#include "util/rational.h"
#include "wmc/dpll.h"
#include "wmc/montecarlo.h"
#include "wmc/wmc_cache.h"
#include "workloads.h"

namespace pdb {
namespace {

void BM_LineageConstruction(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Database db = bench::TwoLevelDatabase(n, 4, &rng);
  auto q = ParseUcqShorthand("R(x), S(x,y)");
  auto ucq = FoToUcq(*q);
  for (auto _ : state) {
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(*ucq, db, &mgr);
    benchmark::DoNotOptimize(lineage);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.TupleCount()));
}
BENCHMARK(BM_LineageConstruction)->Arg(32)->Arg(128)->Arg(512);

// Binary path relations for the compiled-join benches: Sk(i, (i+1) mod n).
// `head_rows` bounds S1 separately so the cost-based order can be forced to
// start from a small head relation.
Database ChainJoinDatabase(size_t head_rows, size_t n) {
  Database db;
  auto add = [&](const char* name, size_t rows) {
    Relation rel(name, Schema::Anonymous(2));
    for (size_t i = 0; i < rows; ++i) {
      PDB_CHECK(rel.AddTuple({Value(static_cast<int64_t>(i)),
                              Value(static_cast<int64_t>((i + 1) % n))},
                             0.5)
                    .ok());
    }
    PDB_CHECK(db.AddRelation(std::move(rel)).ok());
  };
  add("S1", head_rows);
  add("S2", n);
  add("S3", n);
  return db;
}

// M7: compiled join programs vs. the syntactic atom order on an adversarial
// chain query. The query is written S1, S3, S2 — syntactically S3 shares no
// variable with S1, so the naive order enumerates the n x n cross product
// before S2 prunes it. The cost-based order rewrites it to the chain
// S1 -> S2 -> S3 where every step after the first is an indexed lookup.
void BM_CqJoinChain(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bool cost_based = state.range(1) != 0;
  Database db = ChainJoinDatabase(n, n);
  ConjunctiveQuery cq(
      {Atom("S1", {Term::Var("x0"), Term::Var("x1")}),
       Atom("S3", {Term::Var("x2"), Term::Var("x3")}),
       Atom("S2", {Term::Var("x1"), Term::Var("x2")})});
  GroundingOptions grounding;
  grounding.order =
      cost_based ? AtomOrderPolicy::kCostBased : AtomOrderPolicy::kSyntactic;
  for (auto _ : state) {
    size_t matches = 0;
    Status st = EnumerateCqMatches(
        cq, db, [&](const CqMatch&) { ++matches; }, grounding);
    PDB_CHECK(st.ok() && matches == n);
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CqJoinChain)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

// M7: the star-shaped adversary. Written A(x), B(y), D(z), C(x,y,z), the
// syntactic order enumerates the n^3 cross product of the three unary
// atoms before the spoke relation filters it; the cost-based order picks
// one unary, then C (one bound position beats zero), then the remaining
// unaries as fully-bound lookups — O(n) total.
void BM_CqJoinStar(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bool cost_based = state.range(1) != 0;
  Database db;
  for (const char* name : {"A", "B", "D"}) {
    Relation rel(name, Schema::Anonymous(1));
    for (size_t i = 0; i < n; ++i) {
      PDB_CHECK(rel.AddTuple({Value(static_cast<int64_t>(i))}, 0.5).ok());
    }
    PDB_CHECK(db.AddRelation(std::move(rel)).ok());
  }
  Relation c("C", Schema::Anonymous(3));
  for (size_t i = 0; i < n; ++i) {
    Value v(static_cast<int64_t>(i));
    PDB_CHECK(c.AddTuple({v, v, v}, 0.5).ok());
  }
  PDB_CHECK(db.AddRelation(std::move(c)).ok());
  ConjunctiveQuery cq(
      {Atom("A", {Term::Var("x")}), Atom("B", {Term::Var("y")}),
       Atom("D", {Term::Var("z")}),
       Atom("C", {Term::Var("x"), Term::Var("y"), Term::Var("z")})});
  GroundingOptions grounding;
  grounding.order =
      cost_based ? AtomOrderPolicy::kCostBased : AtomOrderPolicy::kSyntactic;
  for (auto _ : state) {
    size_t matches = 0;
    Status st = EnumerateCqMatches(
        cq, db, [&](const CqMatch&) { ++matches; }, grounding);
    PDB_CHECK(st.ok() && matches == n);
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CqJoinStar)->Args({32, 0})->Args({32, 1})->Args({64, 0})->Args(
    {64, 1});

// M7: cold vs. session-cached hash indexes. A tiny head relation joined
// through two large ones: the probe work is a handful of lookups, so the
// per-query cost is dominated by building the two 8192-row indexes — which
// the cached variant pays exactly once across all iterations.
void BM_CqJoinIndexCache(benchmark::State& state) {
  bool cached = state.range(0) != 0;
  constexpr size_t kRows = 8192;
  Database db = ChainJoinDatabase(8, kRows);
  ConjunctiveQuery cq(
      {Atom("S1", {Term::Var("x0"), Term::Var("x1")}),
       Atom("S2", {Term::Var("x1"), Term::Var("x2")}),
       Atom("S3", {Term::Var("x2"), Term::Var("x3")})});
  IndexCache cache;
  ExecContext ctx;
  if (cached) ctx.set_index_cache(&cache);
  GroundingOptions grounding;
  grounding.exec = &ctx;
  for (auto _ : state) {
    size_t matches = 0;
    Status st = EnumerateCqMatches(
        cq, db, [&](const CqMatch&) { ++matches; }, grounding);
    PDB_CHECK(st.ok() && matches == 8);
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_CqJoinIndexCache)->Arg(0)->Arg(1);

// M9: the vectorized columnar executor vs. the row-at-a-time path on the
// same dense-key chain join, steady state (indexes session-cached in both
// modes, cost-based order, so the row measures probe work, not builds).
// The columnar path probes CSR offset arrays with integer codes where the
// row path materializes Tuple keys and hashes Values per probe.
void BM_CqJoinColumnarChain(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bool columnar = state.range(1) != 0;
  Database db = ChainJoinDatabase(n, n);
  ConjunctiveQuery cq(
      {Atom("S1", {Term::Var("x0"), Term::Var("x1")}),
       Atom("S2", {Term::Var("x1"), Term::Var("x2")}),
       Atom("S3", {Term::Var("x2"), Term::Var("x3")})});
  IndexCache cache;
  ExecContext ctx;
  ctx.set_index_cache(&cache);
  GroundingOptions grounding;
  grounding.exec = &ctx;
  grounding.columnar =
      columnar ? ColumnarMode::kAlways : ColumnarMode::kNever;
  for (auto _ : state) {
    size_t matches = 0;
    Status st = EnumerateCqMatches(
        cq, db, [&](const CqMatch&) { ++matches; }, grounding);
    PDB_CHECK(st.ok() && matches == n);
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CqJoinColumnarChain)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({8192, 0})
    ->Args({8192, 1});

// M9: columnar vs. row path on the star join (unary spokes, one wide hub
// probed on a single bound position, then fully-bound spoke lookups).
void BM_CqJoinColumnarStar(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  bool columnar = state.range(1) != 0;
  Database db;
  for (const char* name : {"A", "B", "D"}) {
    Relation rel(name, Schema::Anonymous(1));
    for (size_t i = 0; i < n; ++i) {
      PDB_CHECK(rel.AddTuple({Value(static_cast<int64_t>(i))}, 0.5).ok());
    }
    PDB_CHECK(db.AddRelation(std::move(rel)).ok());
  }
  Relation c("C", Schema::Anonymous(3));
  for (size_t i = 0; i < n; ++i) {
    Value v(static_cast<int64_t>(i));
    PDB_CHECK(c.AddTuple({v, v, v}, 0.5).ok());
  }
  PDB_CHECK(db.AddRelation(std::move(c)).ok());
  ConjunctiveQuery cq(
      {Atom("A", {Term::Var("x")}), Atom("B", {Term::Var("y")}),
       Atom("D", {Term::Var("z")}),
       Atom("C", {Term::Var("x"), Term::Var("y"), Term::Var("z")})});
  IndexCache cache;
  ExecContext ctx;
  ctx.set_index_cache(&cache);
  GroundingOptions grounding;
  grounding.exec = &ctx;
  grounding.columnar =
      columnar ? ColumnarMode::kAlways : ColumnarMode::kNever;
  for (auto _ : state) {
    size_t matches = 0;
    Status st = EnumerateCqMatches(
        cq, db, [&](const CqMatch&) { ++matches; }, grounding);
    PDB_CHECK(st.ok() && matches == n);
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_CqJoinColumnarStar)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({8192, 0})
    ->Args({8192, 1});

// M7: per-tuple lineage construction fanned out over the pool. Thread
// count 1 is the sequential builder (no ExecContext); higher counts force
// the parallel path (thresholds dropped to 1) so the row measures the full
// split/absorb overhead against the identical sequential output.
void BM_LineageParallel(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  Rng gen(23);
  Database db = bench::H0Database(64, &gen);
  auto ucq = FoToUcq(*ParseUcqShorthand("R(x), S(x,y), T(y)"));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  ExecContext ctx(pool.get());
  for (auto _ : state) {
    FormulaManager mgr;
    GroundingOptions grounding;
    if (threads > 1) {
      grounding.exec = &ctx;
      grounding.parallel_min_rows = 1;
      grounding.parallel_min_matches = 1;
    }
    auto lineage = BuildUcqLineage(*ucq, db, &mgr, grounding);
    PDB_CHECK(lineage.ok());
    benchmark::DoNotOptimize(lineage);
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_LineageParallel)->DenseRange(1, 8)->UseRealTime();

void BM_FoLineageConstruction(benchmark::State& state) {
  // Universal query: grounds over domain^2 pairs.
  size_t n = static_cast<size_t>(state.range(0));
  Database db = bench::TwoLevelDatabase(n, 2);
  auto q = ParseFo("forall x forall y (S(x,y) => R(x))");
  for (auto _ : state) {
    FormulaManager mgr;
    auto lineage = BuildLineage(*q, db, &mgr);
    benchmark::DoNotOptimize(lineage);
  }
}
BENCHMARK(BM_FoLineageConstruction)->Arg(8)->Arg(16)->Arg(32);

void BM_FormulaHashConsing(benchmark::State& state) {
  for (auto _ : state) {
    FormulaManager mgr;
    NodeId acc = mgr.False();
    for (VarId v = 0; v < 256; ++v) {
      acc = mgr.Or(acc, mgr.And(mgr.Var(v), mgr.Var((v + 1) % 256)));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FormulaHashConsing);

void BM_ObddApply(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database db = bench::TwoLevelDatabase(n, 2);
  auto q = ParseUcqShorthand("R(x), S(x,y)");
  FormulaManager mgr;
  auto lineage = BuildLineage(*q, db, &mgr);
  PDB_CHECK(lineage.ok());
  std::vector<VarId> order = HierarchicalOrder(*lineage, db);
  for (auto _ : state) {
    Obdd obdd(order);
    auto root = obdd.Compile(&mgr, lineage->root);
    benchmark::DoNotOptimize(root);
  }
}
BENCHMARK(BM_ObddApply)->Arg(16)->Arg(64)->Arg(256);

void BM_DpllCacheBehaviour(benchmark::State& state) {
  // Heavily shared subformulas: measures the cache hit path.
  FormulaManager mgr;
  std::vector<NodeId> layer;
  for (VarId v = 0; v < 16; ++v) layer.push_back(mgr.Var(v));
  for (int rounds = 0; rounds < 3; ++rounds) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < layer.size(); ++i) {
      next.push_back(mgr.Or(layer[i], layer[i + 1]));
    }
    layer = std::move(next);
  }
  NodeId f = mgr.And(layer);
  std::vector<double> probs(16, 0.5);
  for (auto _ : state) {
    DpllCounter counter(&mgr, WeightsFromProbabilities(probs));
    auto p = counter.Compute(f);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_DpllCacheBehaviour);

// M4: sampling throughput vs. thread count. The estimate is bit-identical
// across thread counts (fixed seed, fixed shard plan), so this isolates the
// runtime's scaling: samples/sec at t threads vs. 1 thread.
void BM_MonteCarloSampling(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  Rng gen(7);
  Database db = bench::H0Database(12, &gen);
  auto q = ParseUcqShorthand("R(x), S(x,y), T(y)");
  FormulaManager mgr;
  auto lineage = BuildLineage(*q, db, &mgr);
  PDB_CHECK(lineage.ok());
  mgr.VarsOf(lineage->root);  // warm the cache outside the timed region
  constexpr uint64_t kSamples = 1 << 16;
  ThreadPool pool(static_cast<size_t>(threads));
  ExecContext ctx(&pool);
  for (auto _ : state) {
    Rng rng(20200614);
    Estimate est = NaiveMonteCarlo(&mgr, lineage->root, lineage->probs,
                                   kSamples, &rng, &ctx);
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSamples));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_MonteCarloSampling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_KarpLubySampling(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  Rng gen(7);
  Database db = bench::H0Database(12, &gen);
  auto q = ParseUcqShorthand("R(x), S(x,y), T(y)");
  auto ucq = FoToUcq(*q);
  auto dnf = BuildUcqDnf(*ucq, db);
  PDB_CHECK(dnf.ok());
  constexpr uint64_t kSamples = 1 << 16;
  ThreadPool pool(static_cast<size_t>(threads));
  ExecContext ctx(&pool);
  for (auto _ : state) {
    Rng rng(20200614);
    auto est = KarpLubyDnf(dnf->terms, dnf->probs, kSamples, &rng, &ctx);
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSamples));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_KarpLubySampling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Parallel connected-component solving: a conjunction of variable-disjoint
// random 3-DNF blocks, counted with the component split running on 1/2/4
// pool workers. The count is bit-identical across thread counts; the bench
// isolates the wall-clock scaling of DpllCounter::CountComponentsParallel
// (including the per-child ExportTo clone overhead).
void BM_DpllComponents(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  FormulaManager mgr;
  Rng gen(11);
  std::vector<double> probs;
  std::vector<NodeId> blocks;
  constexpr int kBlocks = 4;
  constexpr int kVarsPerBlock = 14;
  constexpr int kTermsPerBlock = 24;
  for (int b = 0; b < kBlocks; ++b) {
    VarId base = static_cast<VarId>(probs.size());
    for (int v = 0; v < kVarsPerBlock; ++v) {
      probs.push_back(0.2 + 0.6 * gen.NextDouble());
    }
    std::vector<NodeId> terms;
    for (int t = 0; t < kTermsPerBlock; ++t) {
      std::vector<NodeId> lits;
      for (int l = 0; l < 3; ++l) {
        NodeId lit = mgr.Var(base + static_cast<VarId>(
                                        gen.Uniform(kVarsPerBlock)));
        if (gen.Bernoulli(0.5)) lit = mgr.Not(lit);
        lits.push_back(lit);
      }
      terms.push_back(mgr.And(std::move(lits)));
    }
    blocks.push_back(mgr.Or(std::move(terms)));
  }
  NodeId root = mgr.And(std::move(blocks));
  WeightMap weights = WeightsFromProbabilities(probs);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  ExecContext ctx(pool.get());
  for (auto _ : state) {
    DpllOptions options;
    options.parallel_min_vars = 0;
    if (threads > 1) options.exec = &ctx;
    DpllCounter counter(&mgr, weights, options);
    auto p = counter.Compute(root);
    benchmark::DoNotOptimize(p);
  }
  state.counters["threads"] = threads;
}
BENCHMARK(BM_DpllComponents)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// Cross-query WMC memoization, repeated-query scenario: the same #P-hard
// H0 lineage counted by a fresh DpllCounter every iteration — the shape of
// a session serving the same (uncachable-at-the-result-level) query again
// and again. Arg 0 recomputes from scratch; Arg 1 probes a session-lifetime
// shared cache, so every iteration after the first is answered by the
// top-level signature hit. The exported hit_rate counter is the fraction of
// shared-cache probes that hit.
void BM_WmcSharedCache(benchmark::State& state) {
  bool shared = state.range(0) != 0;
  Rng gen(13);
  Database db = bench::H0Database(5, &gen);
  auto ucq = FoToUcq(*ParseUcqShorthand("R(x), S(x,y), T(y)"));
  FormulaManager mgr;
  auto lineage = BuildUcqLineage(*ucq, db, &mgr);
  PDB_CHECK(lineage.ok());
  WeightMap weights = WeightsFromProbabilities(lineage->probs);
  WmcCache cache;
  for (auto _ : state) {
    DpllOptions options;
    if (shared) options.shared_cache = &cache;
    DpllCounter counter(&mgr, weights, options);
    auto p = counter.Compute(lineage->root);
    benchmark::DoNotOptimize(p);
  }
  WmcCacheStats stats = cache.stats();
  uint64_t probes = stats.hits + stats.misses;
  state.counters["hit_rate"] =
      probes == 0 ? 0.0 : static_cast<double>(stats.hits) / probes;
}
BENCHMARK(BM_WmcSharedCache)->Arg(0)->Arg(1);

// Observability overhead on the hot DPLL loop, the same multi-block 3-DNF
// workload as BM_DpllComponents. Arg 0: bare solver, no ExecContext (the
// counters have nowhere to go). Arg 1: ExecContext attached — the always-on
// relaxed-atomic counters every query pays; the obs acceptance bar is
// Arg1/Arg0 within 2%. Arg 2: ExecContext plus a QueryTrace — the opt-in
// cost of `QueryOptions::trace` (clock reads in the shared-cache probes and
// span recording), allowed to be visibly higher. Arg 3: the full server
// observability stack per query — ExecContext, rate-limited EventLog line,
// and the slow-query-log threshold gate (fast query, so the gate rejects:
// the common path). Also held to the 2% bar versus Arg 0: the per-query
// logging cost must stay invisible next to a real solve.
void BM_ObsOverhead(benchmark::State& state) {
  int mode = static_cast<int>(state.range(0));
  FormulaManager mgr;
  Rng gen(11);
  std::vector<double> probs;
  std::vector<NodeId> blocks;
  constexpr int kBlocks = 4;
  constexpr int kVarsPerBlock = 14;
  constexpr int kTermsPerBlock = 24;
  for (int b = 0; b < kBlocks; ++b) {
    VarId base = static_cast<VarId>(probs.size());
    for (int v = 0; v < kVarsPerBlock; ++v) {
      probs.push_back(0.2 + 0.6 * gen.NextDouble());
    }
    std::vector<NodeId> terms;
    for (int t = 0; t < kTermsPerBlock; ++t) {
      std::vector<NodeId> lits;
      for (int l = 0; l < 3; ++l) {
        NodeId lit = mgr.Var(base + static_cast<VarId>(
                                        gen.Uniform(kVarsPerBlock)));
        if (gen.Bernoulli(0.5)) lit = mgr.Not(lit);
        lits.push_back(lit);
      }
      terms.push_back(mgr.And(std::move(lits)));
    }
    blocks.push_back(mgr.Or(std::move(terms)));
  }
  NodeId root = mgr.And(std::move(blocks));
  WeightMap weights = WeightsFromProbabilities(probs);
  ExecContext ctx;
  QueryTrace trace;
  if (mode == 2) ctx.set_trace(&trace);
  EventLogOptions log_options;
  log_options.ring_size = 16;
  EventLog event_log(log_options);
  SlowQueryLog::Options slow_options;
  slow_options.threshold_us = 1'000'000;  // nothing here is that slow
  slow_options.sink = &event_log;
  SlowQueryLog slow_log(slow_options);
  for (auto _ : state) {
    DpllOptions options;
    if (mode >= 1) options.exec = &ctx;
    DpllCounter counter(&mgr, weights, options);
    auto p = counter.Compute(root);
    benchmark::DoNotOptimize(p);
    if (mode == 3) {
      // The server's per-query wrapper: the extended spans (parse /
      // admission / respond are recorded outside the solver's hot loop),
      // one structured log line, and the slow-query threshold gate (a
      // fast query, so no capture).
      QueryTrace server_trace;
      uint64_t now = server_trace.NowNs();
      server_trace.RecordSpan(TracePhase::kHttpParse, now, 1'000);
      server_trace.RecordSpan(TracePhase::kAdmissionWait, now, 500);
      server_trace.RecordSpan(TracePhase::kHttpRespond, now, 2'000);
      server_trace.Finish();
      event_log.Log(LogLevel::kInfo, "query_done",
                    {LogField::Str("method", "grounded-exact"),
                     LogField::Uint("latency_us", 1)});
      SlowQueryEntry entry;
      entry.latency_us = 1;
      entry.statement = "BM_ObsOverhead";
      benchmark::DoNotOptimize(slow_log.MaybeRecord(std::move(entry)));
    }
  }
  state.counters["mode"] = mode;
}
BENCHMARK(BM_ObsOverhead)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Cross-query WMC memoization, fan-out scenario: QueryWithAnswers over
// U(z), R(x), S(x,y), T(y) — every answer tuple's lineage conjoins its own
// U(z_i) with the *same* hard R-S-T core, so with the shared cache each
// per-tuple sub-query after the first starts from that core's entry. This
// is the end-to-end Session path (per-tuple fan-out, largest first).
void BM_WmcSharedCacheFanout(benchmark::State& state) {
  bool shared = state.range(0) != 0;
  Rng gen(17);
  Database db = bench::H0Database(4, &gen);
  Relation u("U", Schema::Anonymous(1));
  constexpr int kHeads = 8;
  for (int i = 1; i <= kHeads; ++i) {
    PDB_CHECK(
        u.AddTuple({Value(static_cast<int64_t>(i))}, 0.1 + 0.05 * i).ok());
  }
  PDB_CHECK(db.AddRelation(std::move(u)).ok());
  ProbDatabase pdb(std::move(db));
  ConjunctiveQuery cq({Atom("U", {Term::Var("z")}),
                       Atom("R", {Term::Var("x")}),
                       Atom("S", {Term::Var("x"), Term::Var("y")}),
                       Atom("T", {Term::Var("y")})});
  uint64_t hits = 0, probes = 0;
  for (auto _ : state) {
    // Fresh session per iteration: result caching off so every tuple's
    // Boolean sub-query re-runs inference; only the WMC-level sharing (or
    // its absence) differs between the two args.
    Session session(&pdb, {.num_threads = 1,
                           .cache_results = false,
                           .share_wmc_cache = shared});
    auto answers = session.QueryWithAnswers(cq, {"z"});
    benchmark::DoNotOptimize(answers);
    PDB_CHECK(answers.ok() && answers->size() == kHeads);
    WmcCacheStats stats = session.wmc_cache_stats();
    hits += stats.hits;
    probes += stats.hits + stats.misses;
  }
  state.counters["hit_rate"] =
      probes == 0 ? 0.0 : static_cast<double>(hits) / probes;
}
BENCHMARK(BM_WmcSharedCacheFanout)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// M11: durable write throughput — group commit and batched records.
// ---------------------------------------------------------------------------

/// MemEnv whose WAL syncs block ~`sync_cost_us` each, standing in for a
/// real fsync (a real disk is slower still, which only widens the group
/// commit win). Sleep, not busy-wait: a real fsync parks the caller while
/// the device works, leaving the CPU to other writers — a spin here would
/// instead burn a core and starve the very pile-up being measured.
class SlowSyncEnv : public Env {
 public:
  explicit SlowSyncEnv(uint64_t sync_cost_us) : sync_cost_us_(sync_cost_us) {}

  uint64_t wal_syncs() const {
    return wal_syncs_.load(std::memory_order_relaxed);
  }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    auto file = mem_.NewWritableFile(path);
    if (!file.ok()) return file.status();
    return Wrap(path, std::move(*file));
  }
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    auto file = mem_.NewAppendableFile(path);
    if (!file.ok()) return file.status();
    return Wrap(path, std::move(*file));
  }
  Status ReadFileToString(const std::string& path, std::string* out) override {
    return mem_.ReadFileToString(path, out);
  }
  bool FileExists(const std::string& path) override {
    return mem_.FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return mem_.GetFileSize(path);
  }
  Result<std::vector<std::string>> GetChildren(
      const std::string& dir) override {
    return mem_.GetChildren(dir);
  }
  Status RemoveFile(const std::string& path) override {
    return mem_.RemoveFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return mem_.RenameFile(from, to);
  }
  Status CreateDirIfMissing(const std::string& dir) override {
    return mem_.CreateDirIfMissing(dir);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return mem_.TruncateFile(path, size);
  }

 private:
  class SlowFile : public WritableFile {
   public:
    SlowFile(std::unique_ptr<WritableFile> inner, SlowSyncEnv* env)
        : inner_(std::move(inner)), env_(env) {}
    Status Append(std::string_view data) override {
      return inner_->Append(data);
    }
    Status Flush() override { return inner_->Flush(); }
    Status Sync() override {
      env_->wal_syncs_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::microseconds(env_->sync_cost_us_));
      return inner_->Sync();
    }
    Status Close() override { return inner_->Close(); }

   private:
    std::unique_ptr<WritableFile> inner_;
    SlowSyncEnv* env_;
  };

  std::unique_ptr<WritableFile> Wrap(const std::string& path,
                                     std::unique_ptr<WritableFile> inner) {
    if (path.find("wal-") == std::string::npos) return inner;
    return std::make_unique<SlowFile>(std::move(inner), this);
  }

  MemEnv mem_;
  const uint64_t sync_cost_us_;
  std::atomic<uint64_t> wal_syncs_{0};
};

// M11: concurrent single-row writers against one DurableDatabase, 1/2/4/8
// threads x sync modes. Under kAlways the 1-writer row IS the per-record-
// sync baseline (no concurrency, one 500us "fsync" per insert; the
// group-commit window is configured but a lone writer skips it); with 8
// writers the commit leader waits out the window for stragglers and
// amortizes one sync across the whole pile-up, so throughput must scale
// far past the sync cost (the acceptance bar is >= 5x the baseline). The
// exported syncs_per_op counter shows the amortization directly.
void BM_DurableWriteConcurrent(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const bool sync_always = state.range(1) != 0;
  constexpr int kPerThread = 64;
  SlowSyncEnv env(/*sync_cost_us=*/5000);
  DurableOptions options;
  options.env = &env;
  options.sync_mode = sync_always ? SyncMode::kAlways : SyncMode::kNone;
  options.group_commit_window_us = 1000;
  auto db = DurableDatabase::Open("/bench", options);
  PDB_CHECK(db.ok());
  PDB_CHECK((*db)->CreateRelation("R", Schema::Anonymous(1)).ok());
  std::atomic<int64_t> next{0};
  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) {
          int64_t v = next.fetch_add(1, std::memory_order_relaxed);
          PDB_CHECK((*db)->Insert("R", {Value(v)}, 0.5).ok());
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  const int64_t ops =
      state.iterations() * static_cast<int64_t>(threads) * kPerThread;
  state.SetItemsProcessed(ops);
  state.counters["threads"] = threads;
  state.counters["syncs_per_op"] =
      ops == 0 ? 0.0
               : static_cast<double>(env.wal_syncs()) /
                     static_cast<double>(ops);
  PDB_CHECK((*db)->Close().ok());
}
BENCHMARK(BM_DurableWriteConcurrent)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({1, 0})
    ->Args({8, 0})
    ->UseRealTime();

// M11: the batch API from a single writer. One InsertMany of `batch` rows
// is one WAL record and one sync; batch=1 degenerates to the per-record
// path. Measures the pure batching win with no concurrency in the mix.
void BM_DurableInsertMany(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  SlowSyncEnv env(/*sync_cost_us=*/5000);
  DurableOptions options;
  options.env = &env;
  options.sync_mode = SyncMode::kAlways;
  auto db = DurableDatabase::Open("/bench", options);
  PDB_CHECK(db.ok());
  PDB_CHECK((*db)->CreateRelation("R", Schema::Anonymous(1)).ok());
  int64_t next = 0;
  for (auto _ : state) {
    std::vector<std::pair<Tuple, double>> rows;
    rows.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      rows.push_back({{Value(next++)}, 0.5});
    }
    PDB_CHECK((*db)->InsertMany("R", std::move(rows)).ok());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
  PDB_CHECK((*db)->Close().ok());
}
BENCHMARK(BM_DurableInsertMany)->Arg(1)->Arg(64)->Arg(512)->UseRealTime();

void BM_BigIntMultiply(benchmark::State& state) {
  BigInt a = BigInt::Factorial(static_cast<uint64_t>(state.range(0)));
  BigInt b = a + BigInt(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMultiply)->Arg(50)->Arg(200)->Arg(800);

void BM_BigRationalNormalize(benchmark::State& state) {
  BigRational p = BigRational::FromDouble(0.7).Pow(
      static_cast<uint64_t>(state.range(0)));
  BigRational q = BigRational::FromDouble(0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p * q);
  }
}
BENCHMARK(BM_BigRationalNormalize)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

/// Console output plus a machine-readable BENCH_micro.json export. Rates
/// are computed against wall-clock time (not CPU time): thread scaling is
/// precisely what the file is meant to track.
class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonExportReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      bench::BenchRecord rec;
      rec.name = run.benchmark_name();
      double iters = run.iterations > 0
                         ? static_cast<double>(run.iterations)
                         : 1.0;
      rec.wall_ms = run.real_accumulated_time / iters * 1e3;
      auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        // Already finalized to a rate (per second of the measured time
        // base; our sampling benches use UseRealTime, i.e. wall clock).
        rec.samples_per_sec = items->second.value;
      }
      auto threads = run.counters.find("threads");
      rec.threads = threads != run.counters.end()
                        ? static_cast<int>(threads->second.value)
                        : static_cast<int>(run.threads);
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  void Finalize() override {
    bench::WriteBenchJson(path_, records_);
    std::printf("wrote %zu records to %s\n", records_.size(), path_.c_str());
    ConsoleReporter::Finalize();
  }

 private:
  std::string path_;
  std::vector<bench::BenchRecord> records_;
};

}  // namespace pdb

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  pdb::JsonExportReporter reporter("BENCH_micro.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
