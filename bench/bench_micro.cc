// M1-M3 — substrate microbenchmarks: lineage construction throughput,
// formula-manager operations, OBDD apply, DPLL cache behaviour, big-number
// arithmetic. These watch the plumbing the experiment benches stand on.

#include <benchmark/benchmark.h>

#include "boolean/lineage.h"
#include "kc/obdd.h"
#include "kc/order.h"
#include "logic/parser.h"
#include "util/big_int.h"
#include "util/rational.h"
#include "wmc/dpll.h"
#include "workloads.h"

namespace pdb {
namespace {

void BM_LineageConstruction(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Database db = bench::TwoLevelDatabase(n, 4, &rng);
  auto q = ParseUcqShorthand("R(x), S(x,y)");
  auto ucq = FoToUcq(*q);
  for (auto _ : state) {
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(*ucq, db, &mgr);
    benchmark::DoNotOptimize(lineage);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.TupleCount()));
}
BENCHMARK(BM_LineageConstruction)->Arg(32)->Arg(128)->Arg(512);

void BM_FoLineageConstruction(benchmark::State& state) {
  // Universal query: grounds over domain^2 pairs.
  size_t n = static_cast<size_t>(state.range(0));
  Database db = bench::TwoLevelDatabase(n, 2);
  auto q = ParseFo("forall x forall y (S(x,y) => R(x))");
  for (auto _ : state) {
    FormulaManager mgr;
    auto lineage = BuildLineage(*q, db, &mgr);
    benchmark::DoNotOptimize(lineage);
  }
}
BENCHMARK(BM_FoLineageConstruction)->Arg(8)->Arg(16)->Arg(32);

void BM_FormulaHashConsing(benchmark::State& state) {
  for (auto _ : state) {
    FormulaManager mgr;
    NodeId acc = mgr.False();
    for (VarId v = 0; v < 256; ++v) {
      acc = mgr.Or(acc, mgr.And(mgr.Var(v), mgr.Var((v + 1) % 256)));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FormulaHashConsing);

void BM_ObddApply(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database db = bench::TwoLevelDatabase(n, 2);
  auto q = ParseUcqShorthand("R(x), S(x,y)");
  FormulaManager mgr;
  auto lineage = BuildLineage(*q, db, &mgr);
  PDB_CHECK(lineage.ok());
  std::vector<VarId> order = HierarchicalOrder(*lineage, db);
  for (auto _ : state) {
    Obdd obdd(order);
    auto root = obdd.Compile(&mgr, lineage->root);
    benchmark::DoNotOptimize(root);
  }
}
BENCHMARK(BM_ObddApply)->Arg(16)->Arg(64)->Arg(256);

void BM_DpllCacheBehaviour(benchmark::State& state) {
  // Heavily shared subformulas: measures the cache hit path.
  FormulaManager mgr;
  std::vector<NodeId> layer;
  for (VarId v = 0; v < 16; ++v) layer.push_back(mgr.Var(v));
  for (int rounds = 0; rounds < 3; ++rounds) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < layer.size(); ++i) {
      next.push_back(mgr.Or(layer[i], layer[i + 1]));
    }
    layer = std::move(next);
  }
  NodeId f = mgr.And(layer);
  std::vector<double> probs(16, 0.5);
  for (auto _ : state) {
    DpllCounter counter(&mgr, WeightsFromProbabilities(probs));
    auto p = counter.Compute(f);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_DpllCacheBehaviour);

void BM_BigIntMultiply(benchmark::State& state) {
  BigInt a = BigInt::Factorial(static_cast<uint64_t>(state.range(0)));
  BigInt b = a + BigInt(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMultiply)->Arg(50)->Arg(200)->Arg(800);

void BM_BigRationalNormalize(benchmark::State& state) {
  BigRational p = BigRational::FromDouble(0.7).Pow(
      static_cast<uint64_t>(state.range(0)));
  BigRational q = BigRational::FromDouble(0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p * q);
  }
}
BENCHMARK(BM_BigRationalNormalize)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace pdb

BENCHMARK_MAIN();
