// E8 — paper §8: symmetric databases (Theorems 8.1, 8.2).
//
// (a) the paper's closed form for p(H0) on symmetric databases (with the
//     corrected exponent (n-k)(n-l); see EXPERIMENTS.md) == brute force ==
//     the generic FO2 cell algorithm;
// (b) polynomial scaling of FO2 lifted counting to domain sizes where the
//     grounded problem has ~2^(n^2) worlds;
// (c) the same H0 on an *asymmetric* database stays exponential (the
//     symmetry is what buys tractability).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>

#include "boolean/lineage.h"
#include "logic/parser.h"
#include "symmetric/fo2.h"
#include "symmetric/symmetric.h"
#include "wmc/dpll.h"
#include "workloads.h"

namespace pdb {
namespace {

void PrintAgreementTable() {
  bench::Section("E8a: closed form == cell algorithm == brute force");
  auto h0 = ParseFo("forall x forall y (R(x) | S(x,y) | T(y))");
  PDB_CHECK(h0.ok());
  std::printf("%4s %14s %14s %14s\n", "n", "closed form", "FO2 cells",
              "brute force");
  for (size_t n : {1u, 2u, 3u}) {
    SymmetricDatabase sym({{"R", 1, 0.5}, {"S", 2, 0.75}, {"T", 1, 0.25}}, n);
    double closed = H0SymmetricClosedForm(0.5, 0.75, 0.25, n).ToDouble();
    auto cells = SymmetricPqe(*h0, sym);
    PDB_CHECK(cells.ok());
    auto db = sym.Materialize();
    PDB_CHECK(db.ok());
    FormulaManager mgr;
    auto domain = sym.Domain();
    auto lineage = BuildLineage(*h0, *db, &mgr, &domain);
    PDB_CHECK(lineage.ok());
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    double brute = *counter.Compute(lineage->root);
    std::printf("%4zu %14.9f %14.9f %14.9f\n", n, closed,
                cells->ToDouble(), brute);
    PDB_CHECK(std::abs(closed - brute) < 1e-9);
    PDB_CHECK(std::abs(cells->ToDouble() - brute) < 1e-9);
  }
}

void PrintScalingTable() {
  bench::Section("E8b: FO2 lifted counting scales polynomially (Thm 8.1)");
  auto h0 = ParseFo("forall x forall y (R(x) | S(x,y) | T(y))");
  auto fe = ParseFo("forall x exists y S(x,y)");
  std::printf("%6s %14s %12s %16s %12s\n", "n", "p(H0)", "h0_ms",
              "p(forall-exists)", "fe_ms");
  for (size_t n : {10u, 25u, 50u, 100u, 200u}) {
    SymmetricDatabase sym({{"R", 1, 0.5}, {"S", 2, 0.9}, {"T", 1, 0.5}}, n);
    auto t0 = std::chrono::steady_clock::now();
    auto p_h0 = SymmetricPqeApprox(*h0, sym);
    double h0_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    PDB_CHECK(p_h0.ok());
    SymmetricDatabase sym_s({{"S", 2, 0.1}}, n);
    t0 = std::chrono::steady_clock::now();
    auto p_fe = SymmetricPqeApprox(*fe, sym_s);
    double fe_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    PDB_CHECK(p_fe.ok());
    std::printf("%6zu %14.6g %12.1f %16.6g %12.1f\n", n, *p_h0, h0_ms,
                *p_fe, fe_ms);
  }
  std::printf("(a grounded approach would enumerate up to 2^(n^2+2n) "
              "worlds)\n");
}

void PrintAsymmetricContrast() {
  bench::Section("E8c: without symmetry H0 stays exponential");
  auto dual = ParseUcqShorthand("R(x), S(x,y), T(y)");
  auto ucq = FoToUcq(*dual);
  std::printf("%4s %14s %14s\n", "n", "dpll_decisions", "dpll_ms");
  for (size_t n = 2; n <= 7; ++n) {
    Rng rng(n * 3 + 1);
    Database db = bench::H0Database(n, &rng);  // random probabilities
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(*ucq, db, &mgr);
    PDB_CHECK(lineage.ok());
    auto t0 = std::chrono::steady_clock::now();
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    auto p = counter.Compute(lineage->root);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    PDB_CHECK(p.ok());
    std::printf("%4zu %14llu %14.2f\n", n,
                static_cast<unsigned long long>(counter.stats().decisions),
                ms);
  }
  std::printf("(compare with the flat FO2 timings above at n >= 50)\n");
}

void BM_SymmetricH0(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto h0 = ParseFo("forall x forall y (R(x) | S(x,y) | T(y))");
  SymmetricDatabase sym({{"R", 1, 0.5}, {"S", 2, 0.9}, {"T", 1, 0.5}}, n);
  for (auto _ : state) {
    auto p = SymmetricPqeApprox(*h0, sym);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_SymmetricH0)->Arg(25)->Arg(50)->Arg(100);

void BM_SymmetricClosedForm(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        H0SymmetricClosedFormApprox(0.5, 0.9, 0.5, n));
  }
}
BENCHMARK(BM_SymmetricClosedForm)->Arg(25)->Arg(50)->Arg(100);

}  // namespace
}  // namespace pdb

int main(int argc, char** argv) {
  pdb::PrintAgreementTable();
  pdb::PrintScalingTable();
  pdb::PrintAsymmetricContrast();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
