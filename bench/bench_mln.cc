// E3 — paper §3 (Proposition 3.1) and the appendix's Figure 3.
//
// (a) regenerates the Figure 3 table: probabilities and weights of all
//     eight assignments of (X1, X2, X3) for F = (X1|X2)(X1|X3)(X2|X3), plus
//     the factored weight' column with the extra factor (w4, X1 => X2);
// (b) verifies p_MLN(Q) == p_D(Q | Γ) on the Manager/HighlyCompensated
//     example and random MLNs;
// (c) times exact enumeration vs translated conditional inference.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "boolean/formula.h"
#include "logic/parser.h"
#include "mln/mln.h"
#include "mln/translate.h"
#include "util/string_util.h"
#include "workloads.h"

namespace pdb {
namespace {

void PrintFigure3() {
  bench::Section("E3a: appendix Figure 3 (weights and probabilities)");
  const double w1 = 0.5, w2 = 2.0, w3 = 3.0, w4 = 1.5;
  const double p1 = w1 / (1 + w1), p2 = w2 / (1 + w2), p3 = w3 / (1 + w3);
  FormulaManager mgr;
  NodeId f = mgr.And(std::vector<NodeId>{mgr.Or(mgr.Var(0), mgr.Var(1)),
                                         mgr.Or(mgr.Var(0), mgr.Var(2)),
                                         mgr.Or(mgr.Var(1), mgr.Var(2))});
  NodeId g = mgr.Or(mgr.Not(mgr.Var(0)), mgr.Var(1));  // X1 => X2
  std::printf("w = (%.1f, %.1f, %.1f), feature weight w4 = %.1f\n", w1, w2,
              w3, w4);
  std::printf("%4s %4s %4s | %2s | %12s %10s | %2s | %10s\n", "X1", "X2",
              "X3", "F", "p(theta)", "weight", "G", "weight'");
  double z = 0, zp = 0, weight_f = 0, weightp_f = 0;
  for (int mask = 0; mask < 8; ++mask) {
    std::vector<bool> theta = {bool(mask & 1), bool(mask & 2),
                               bool(mask & 4)};
    double p = (theta[0] ? p1 : 1 - p1) * (theta[1] ? p2 : 1 - p2) *
               (theta[2] ? p3 : 1 - p3);
    double weight = (theta[0] ? w1 : 1) * (theta[1] ? w2 : 1) *
                    (theta[2] ? w3 : 1);
    bool f_val = mgr.Evaluate(f, theta);
    bool g_val = mgr.Evaluate(g, theta);
    double weightp = weight * (g_val ? w4 : 1);
    z += weight;
    zp += weightp;
    if (f_val) {
      weight_f += weight;
      weightp_f += weightp;
    }
    std::printf("%4d %4d %4d | %2d | %12.6f %10.4f | %2d | %10.4f\n",
                static_cast<int>(theta[0]), static_cast<int>(theta[1]),
                static_cast<int>(theta[2]), static_cast<int>(f_val), p,
                weight, static_cast<int>(g_val), weightp);
  }
  std::printf("Z = %.4f (closed form (1+w1)(1+w2)(1+w3) = %.4f)\n", z,
              (1 + w1) * (1 + w2) * (1 + w3));
  std::printf("weight(F) = %.4f; p(F) = weight(F)/Z = %.6f\n", weight_f,
              weight_f / z);
  std::printf("with factor (w4, X1=>X2): Z' = %.4f, weight'(F) = %.4f\n",
              zp, weightp_f);
}

Mln ManagerMln(double weight, size_t domain_size) {
  Mln mln;
  PDB_CHECK(mln.AddPredicate("Manager", 2).ok());
  PDB_CHECK(mln.AddPredicate("HighlyCompensated", 1).ok());
  auto delta = ParseFo("Manager(m, e) => HighlyCompensated(m)");
  PDB_CHECK(delta.ok());
  PDB_CHECK(mln.AddConstraint(weight, {"m", "e"}, *delta).ok());
  std::vector<Value> domain;
  for (size_t i = 1; i <= domain_size; ++i) {
    domain.push_back(Value(static_cast<int64_t>(i)));
  }
  mln.SetDomain(std::move(domain));
  return mln;
}

void PrintProposition31() {
  bench::Section("E3b: Proposition 3.1 — MLN == TID + constraint");
  Mln mln = ManagerMln(3.9, 2);
  auto translation = TranslateMln(mln);
  PDB_CHECK(translation.ok());
  const char* queries[] = {
      "HighlyCompensated(1)",
      "Manager(1,2)",
      "Manager(1,2) & HighlyCompensated(1)",
      "exists m exists e (Manager(m,e) & HighlyCompensated(m))",
      "forall m (HighlyCompensated(m))",
  };
  std::printf("%-56s %12s %12s %10s\n", "query", "p_MLN", "p_D(Q|Gamma)",
              "|diff|");
  double max_diff = 0;
  for (const char* text : queries) {
    auto q = ParseFo(text);
    PDB_CHECK(q.ok());
    double exact = *mln.ExactQueryProbability(*q);
    double translated = *TranslatedQueryProbability(*translation, *q);
    max_diff = std::max(max_diff, std::abs(exact - translated));
    std::printf("%-56s %12.8f %12.8f %10.2g\n", text, exact, translated,
                std::abs(exact - translated));
  }
  std::printf("max |diff| = %.3g %s\n", max_diff,
              max_diff < 1e-9 ? "(MATCH)" : "(MISMATCH!)");
}

void BM_MlnExactEnumeration(benchmark::State& state) {
  Mln mln = ManagerMln(3.9, 2);
  auto q = ParseFo("HighlyCompensated(1)");
  for (auto _ : state) {
    auto p = mln.ExactQueryProbability(*q);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_MlnExactEnumeration);

void BM_MlnTranslatedInference(benchmark::State& state) {
  Mln mln = ManagerMln(3.9, 2);
  auto translation = TranslateMln(mln);
  PDB_CHECK(translation.ok());
  auto q = ParseFo("HighlyCompensated(1)");
  for (auto _ : state) {
    auto p = TranslatedQueryProbability(*translation, *q);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_MlnTranslatedInference);

void BM_MlnTranslatedLargerDomain(benchmark::State& state) {
  // Translated inference scales past the enumeration limit: the grounded
  // network has 3 ground atoms per domain pair but DPLL exploits structure.
  size_t domain = static_cast<size_t>(state.range(0));
  Mln mln = ManagerMln(3.9, domain);
  auto translation = TranslateMln(mln);
  PDB_CHECK(translation.ok());
  auto q = ParseFo("HighlyCompensated(1)");
  for (auto _ : state) {
    auto p = TranslatedQueryProbability(*translation, *q);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_MlnTranslatedLargerDomain)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace pdb

int main(int argc, char** argv) {
  pdb::PrintFigure3();
  pdb::PrintProposition31();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
