// E1 — Figure 1 + Example 2.1.
//
// Reproduces the paper's worked example: the probability of the inclusion
// constraint Q = forall x forall y (S(x,y) => R(x)) on the Figure 1 TID.
// Every engine must produce the paper's closed form
//   (p1 + (1-p1)(1-q1)(1-q2)) (p2 + (1-p2)(1-q3)(1-q4)(1-q5)) (1-q6),
// and the google-benchmark section times each engine on scaled-up variants
// of the same shape.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "boolean/lineage.h"
#include "kc/obdd.h"
#include "kc/order.h"
#include "lifted/lifted.h"
#include "logic/parser.h"
#include "wmc/dpll.h"
#include "wmc/enumeration.h"
#include "workloads.h"

namespace pdb {
namespace {

constexpr char kQuery[] = "forall x forall y (S(x,y) => R(x))";

void PrintExample21Table() {
  bench::Section("E1: Example 2.1 on the Figure 1 database");
  const double p1 = 0.3, p2 = 0.5, q1 = 0.1, q2 = 0.2, q3 = 0.4, q4 = 0.6,
               q5 = 0.7, q6 = 0.8;
  double paper = (p1 + (1 - p1) * (1 - q1) * (1 - q2)) *
                 (p2 + (1 - p2) * (1 - q3) * (1 - q4) * (1 - q5)) * (1 - q6);
  Database db = bench::Figure1Database();
  auto q = ParseFo(kQuery);
  PDB_CHECK(q.ok());

  double lifted = *LiftedProbabilityFo(*q, db);

  FormulaManager mgr;
  auto lineage = BuildLineage(*q, db, &mgr);
  PDB_CHECK(lineage.ok());
  DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
  double dpll = *counter.Compute(lineage->root);
  double brute = *EnumerateProbability(&mgr, lineage->root, lineage->probs);
  BigRational exact =
      *EnumerateProbabilityExact(&mgr, lineage->root, lineage->probs);

  Obdd obdd(IdentityOrder(lineage->vars.size()));
  double obdd_wmc = obdd.Wmc(*obdd.Compile(&mgr, lineage->root),
                             WeightsFromProbabilities(lineage->probs));

  std::printf("%-28s %.15f\n", "paper closed form", paper);
  std::printf("%-28s %.15f\n", "lifted inference", lifted);
  std::printf("%-28s %.15f\n", "grounded DPLL WMC", dpll);
  std::printf("%-28s %.15f\n", "OBDD compilation", obdd_wmc);
  std::printf("%-28s %.15f\n", "brute-force enumeration", brute);
  std::printf("%-28s %s\n", "exact rational", exact.ToString().c_str());
  double max_err = std::max({std::abs(lifted - paper), std::abs(dpll - paper),
                             std::abs(obdd_wmc - paper),
                             std::abs(brute - paper)});
  std::printf("max |engine - paper| = %.3g %s\n", max_err,
              max_err < 1e-12 ? "(MATCH)" : "(MISMATCH!)");
}

// Timing: Example 2.1 shape scaled to n R-tuples with fanout-3 S rows.
Database ScaledExample(size_t n) {
  Rng rng(2020);
  return bench::TwoLevelDatabase(n, 3, &rng);
}

void BM_Example21Lifted(benchmark::State& state) {
  Database db = ScaledExample(static_cast<size_t>(state.range(0)));
  auto q = ParseFo(kQuery);
  for (auto _ : state) {
    auto p = LiftedProbabilityFo(*q, db);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Example21Lifted)->Arg(8)->Arg(32)->Arg(128);

void BM_Example21Grounded(benchmark::State& state) {
  Database db = ScaledExample(static_cast<size_t>(state.range(0)));
  auto q = ParseFo(kQuery);
  for (auto _ : state) {
    FormulaManager mgr;
    auto lineage = BuildLineage(*q, db, &mgr);
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    auto p = counter.Compute(lineage->root);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Example21Grounded)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace pdb

int main(int argc, char** argv) {
  pdb::PrintExample21Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
