// E2 — Theorem 2.2: PQE(H0) is #P-hard.
//
// Hardness shows up as exponential growth of every exact grounded method on
// the H0 lineage over complete bipartite instances, while the approximate
// engines (Karp-Luby on the DNF, naive Monte Carlo) converge at the
// statistical O(1/sqrt(samples)) rate regardless of n.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "boolean/lineage.h"
#include "logic/parser.h"
#include "wmc/dpll.h"
#include "wmc/montecarlo.h"
#include "workloads.h"

namespace pdb {
namespace {

// H0's dual CQ: lineage of exists x y (R & S & T) == complement of H0 under
// complemented probabilities; the counting effort is identical and the DNF
// makes Karp-Luby applicable.
constexpr char kDualH0[] = "R(x), S(x,y), T(y)";

void PrintScalingTable() {
  bench::Section("E2: exact methods blow up on H0 (Theorem 2.2)");
  std::printf("%4s %10s %12s %14s %12s\n", "n", "vars", "decisions",
              "dpll_ms", "p");
  auto q = ParseUcqShorthand(kDualH0);
  PDB_CHECK(q.ok());
  auto ucq = FoToUcq(*q);
  for (size_t n = 2; n <= 8; ++n) {
    Rng rng(7 * n);
    Database db = bench::H0Database(n, &rng);
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(*ucq, db, &mgr);
    PDB_CHECK(lineage.ok());
    auto start = std::chrono::steady_clock::now();
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    auto p = counter.Compute(lineage->root);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    PDB_CHECK(p.ok());
    std::printf("%4zu %10zu %12llu %14.2f %12.6f\n", n, lineage->vars.size(),
                static_cast<unsigned long long>(counter.stats().decisions),
                ms, *p);
  }
  std::printf("(decisions should grow exponentially with n)\n");
}

void PrintMonteCarloTable() {
  bench::Section("E2b: Monte Carlo converges where exact counting cannot");
  const size_t n = 12;  // far beyond comfortable exact counting
  Rng rng(99);
  Database db = bench::H0Database(n, &rng);
  auto ucq = FoToUcq(*ParseUcqShorthand(kDualH0));
  auto dnf = BuildUcqDnf(*ucq, db);
  PDB_CHECK(dnf.ok());
  FormulaManager mgr;
  auto lineage = BuildUcqLineage(*ucq, db, &mgr);
  PDB_CHECK(lineage.ok());
  std::printf("n=%zu, %zu lineage variables, %zu DNF terms\n", n,
              lineage->vars.size(), dnf->terms.size());
  std::printf("%10s %14s %12s %16s %12s\n", "samples", "karp-luby",
              "kl_stderr", "naive_mc", "mc_stderr");
  for (uint64_t samples : {1000u, 10000u, 100000u}) {
    Rng kl_rng(5);
    auto kl = KarpLubyDnf(dnf->terms, dnf->probs, samples, &kl_rng);
    PDB_CHECK(kl.ok());
    Rng mc_rng(6);
    Estimate mc =
        NaiveMonteCarlo(&mgr, lineage->root, lineage->probs, samples, &mc_rng);
    std::printf("%10llu %14.6f %12.6f %16.6f %12.6f\n",
                static_cast<unsigned long long>(samples), kl->value,
                kl->std_error, mc.value, mc.std_error);
  }
  std::printf("(stderr should shrink ~3.2x per 10x samples)\n");
}

void BM_DpllOnH0(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7 * n);
  Database db = bench::H0Database(n, &rng);
  auto ucq = FoToUcq(*ParseUcqShorthand(kDualH0));
  for (auto _ : state) {
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(*ucq, db, &mgr);
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    auto p = counter.Compute(lineage->root);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_DpllOnH0)->DenseRange(3, 7, 1);

void BM_KarpLubyOnH0(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7 * n);
  Database db = bench::H0Database(n, &rng);
  auto ucq = FoToUcq(*ParseUcqShorthand(kDualH0));
  auto dnf = BuildUcqDnf(*ucq, db);
  Rng sample_rng(1);
  for (auto _ : state) {
    auto est = KarpLubyDnf(dnf->terms, dnf->probs, 10000, &sample_rng);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_KarpLubyOnH0)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace pdb

int main(int argc, char** argv) {
  pdb::PrintScalingTable();
  pdb::PrintMonteCarloTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
