// Ablations of the design choices DESIGN.md calls out:
//   A1: DPLL connected-component decomposition on/off;
//   A2: DPLL variable-selection heuristic (most-occurrences vs lowest-var);
//   A3: OBDD variable order (hierarchical blocks vs identity vs random);
//   A4: Karp-Luby vs naive Monte Carlo at equal sample budgets (relative
//       error on a small-probability query).
// (The lifted engine's inclusion-exclusion ablation lives in
// bench_inclusion_exclusion.)

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>

#include "boolean/lineage.h"
#include "kc/obdd.h"
#include "kc/order.h"
#include "logic/parser.h"
#include "wmc/dpll.h"
#include "wmc/montecarlo.h"
#include "workloads.h"

namespace pdb {
namespace {

void PrintComponentAblation() {
  bench::Section("A1: DPLL component decomposition");
  // The universal constraint's lineage is a conjunction of independent
  // per-constant blocks — exactly the shape the component rule exploits.
  auto q = ParseFo("forall x forall y (S(x,y) => R(x))");
  PDB_CHECK(q.ok());
  std::printf("%4s %14s %14s %16s %16s\n", "n", "decisions(on)",
              "splits(on)", "decisions(off)", "splits(off)");
  for (size_t n : {4u, 8u, 12u, 16u}) {
    Rng rng(n);
    Database db = bench::TwoLevelDatabase(n, 2, &rng);
    FormulaManager mgr;
    auto lineage = BuildLineage(*q, db, &mgr);
    PDB_CHECK(lineage.ok());
    DpllOptions on;
    on.use_components = true;
    DpllCounter c_on(&mgr, WeightsFromProbabilities(lineage->probs), on);
    PDB_CHECK(c_on.Compute(lineage->root).ok());
    FormulaManager mgr2;
    auto lineage2 = BuildLineage(*q, db, &mgr2);
    DpllOptions off;
    off.use_components = false;
    DpllCounter c_off(&mgr2, WeightsFromProbabilities(lineage2->probs), off);
    PDB_CHECK(c_off.Compute(lineage2->root).ok());
    std::printf("%4zu %14llu %14llu %16llu %16llu\n", n,
                static_cast<unsigned long long>(c_on.stats().decisions),
                static_cast<unsigned long long>(c_on.stats().component_splits),
                static_cast<unsigned long long>(c_off.stats().decisions),
                static_cast<unsigned long long>(
                    c_off.stats().component_splits));
  }
  std::printf("(components turn independent blocks into products)\n");
}

void PrintHeuristicAblation() {
  bench::Section("A2: DPLL variable-selection heuristic on the H0 lineage");
  auto ucq = FoToUcq(*ParseUcqShorthand("R(x), S(x,y), T(y)"));
  std::printf("%4s %20s %18s\n", "n", "most-occurrences", "lowest-var");
  for (size_t n : {3u, 4u, 5u}) {
    Rng rng(n + 100);
    Database db = bench::H0Database(n, &rng);
    uint64_t counts[2];
    DpllHeuristic heuristics[2] = {DpllHeuristic::kMostOccurrences,
                                   DpllHeuristic::kLowestVar};
    double values[2];
    for (int h = 0; h < 2; ++h) {
      FormulaManager mgr;
      auto lineage = BuildUcqLineage(*ucq, db, &mgr);
      PDB_CHECK(lineage.ok());
      DpllOptions options;
      options.heuristic = heuristics[h];
      DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs),
                          options);
      auto p = counter.Compute(lineage->root);
      PDB_CHECK(p.ok());
      counts[h] = counter.stats().decisions;
      values[h] = *p;
    }
    PDB_CHECK(std::abs(values[0] - values[1]) < 1e-9);
    std::printf("%4zu %20llu %18llu\n", n,
                static_cast<unsigned long long>(counts[0]),
                static_cast<unsigned long long>(counts[1]));
  }
}

void PrintOrderAblation() {
  bench::Section("A3: OBDD order on the hierarchical lineage R(x),S(x,y)");
  auto q = ParseUcqShorthand("R(x), S(x,y)");
  std::printf("%4s %16s %12s %14s\n", "n", "hierarchical", "identity",
              "random(best3)");
  for (size_t n : {4u, 8u, 16u, 32u}) {
    Database db = bench::TwoLevelDatabase(n, 2);
    FormulaManager mgr;
    auto lineage = BuildLineage(*q, db, &mgr);
    PDB_CHECK(lineage.ok());
    Obdd hier(HierarchicalOrder(*lineage, db));
    size_t hier_size = hier.Size(*hier.Compile(&mgr, lineage->root));
    Obdd ident(IdentityOrder(lineage->vars.size()));
    size_t ident_size = ident.Size(*ident.Compile(&mgr, lineage->root));
    // Random orders interleave the blocks and blow up exponentially in the
    // number of blocks; only sample them while n is tiny.
    size_t best_random = SIZE_MAX;
    if (n <= 8) {
      Rng rng(n);
      std::vector<VarId> order = IdentityOrder(lineage->vars.size());
      for (int t = 0; t < 3; ++t) {
        for (size_t i = order.size(); i > 1; --i) {
          std::swap(order[i - 1], order[rng.Uniform(i)]);
        }
        Obdd obdd(order);
        best_random = std::min(best_random,
                               obdd.Size(*obdd.Compile(&mgr, lineage->root)));
      }
    }
    if (best_random == SIZE_MAX) {
      std::printf("%4zu %16zu %12zu %14s\n", n, hier_size, ident_size, "-");
    } else {
      std::printf("%4zu %16zu %12zu %14zu\n", n, hier_size, ident_size,
                  best_random);
    }
  }
  std::printf("(the hierarchical order is what makes Theorem 7.1(i) "
              "linear)\n");
}

void PrintEstimatorAblation() {
  bench::Section("A4: Karp-Luby vs naive MC on a small-probability query");
  // Low tuple probabilities make the query probability tiny; naive MC's
  // relative error explodes while Karp-Luby stays controlled.
  Database db;
  Relation r("R", Schema::Anonymous(1));
  Relation s("S", Schema::Anonymous(2));
  Relation t("T", Schema::Anonymous(1));
  for (int64_t i = 1; i <= 6; ++i) {
    PDB_CHECK(r.AddTuple({Value(i)}, 0.02).ok());
    PDB_CHECK(t.AddTuple({Value(i)}, 0.02).ok());
    for (int64_t j = 1; j <= 6; ++j) {
      PDB_CHECK(s.AddTuple({Value(i), Value(j)}, 0.05).ok());
    }
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  PDB_CHECK(db.AddRelation(std::move(t)).ok());
  auto ucq = FoToUcq(*ParseUcqShorthand("R(x), S(x,y), T(y)"));
  FormulaManager mgr;
  auto lineage = BuildUcqLineage(*ucq, db, &mgr);
  PDB_CHECK(lineage.ok());
  DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
  double truth = *counter.Compute(lineage->root);
  auto dnf = BuildUcqDnf(*ucq, db);
  PDB_CHECK(dnf.ok());
  std::printf("truth = %.8g\n", truth);
  std::printf("%10s %14s %12s %14s %12s\n", "samples", "karp-luby",
              "rel_err", "naive_mc", "rel_err");
  for (uint64_t samples : {1000u, 10000u, 100000u}) {
    Rng kl_rng(7);
    auto kl = KarpLubyDnf(dnf->terms, dnf->probs, samples, &kl_rng);
    PDB_CHECK(kl.ok());
    Rng mc_rng(8);
    Estimate mc =
        NaiveMonteCarlo(&mgr, lineage.value().root, lineage->probs, samples,
                        &mc_rng);
    std::printf("%10llu %14.8g %12.4f %14.8g %12.4f\n",
                static_cast<unsigned long long>(samples), kl->value,
                std::abs(kl->value - truth) / truth, mc.value,
                std::abs(mc.value - truth) / truth);
  }
}

void BM_DpllComponentsOn(benchmark::State& state) {
  Rng rng(12);
  Database db = bench::TwoLevelDatabase(12, 2, &rng);
  auto ucq = FoToUcq(*ParseUcqShorthand("R(x), S(x,y)"));
  FormulaManager mgr;
  auto lineage = BuildUcqLineage(*ucq, db, &mgr);
  PDB_CHECK(lineage.ok());
  for (auto _ : state) {
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    auto p = counter.Compute(lineage->root);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_DpllComponentsOn);

void BM_DpllComponentsOff(benchmark::State& state) {
  Rng rng(12);
  Database db = bench::TwoLevelDatabase(12, 2, &rng);
  auto ucq = FoToUcq(*ParseUcqShorthand("R(x), S(x,y)"));
  FormulaManager mgr;
  auto lineage = BuildUcqLineage(*ucq, db, &mgr);
  PDB_CHECK(lineage.ok());
  DpllOptions off;
  off.use_components = false;
  for (auto _ : state) {
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs), off);
    auto p = counter.Compute(lineage->root);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_DpllComponentsOff);

}  // namespace
}  // namespace pdb

int main(int argc, char** argv) {
  pdb::PrintComponentAblation();
  pdb::PrintHeuristicAblation();
  pdb::PrintOrderAblation();
  pdb::PrintEstimatorAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
