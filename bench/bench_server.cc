// S1 — pdbd saturation: N client threads (8..64) hammer a live in-process
// PdbServer over real loopback sockets with tight admission limits, mixing
// cheap safe queries with deadline-bounded hard ones. The interesting
// outputs are the counters, not the wall time: admitted vs shed (429)
// requests, the p99 latency of *admitted* requests (load shedding must keep
// it bounded — that is the whole point of fast-failing the overflow), and a
// post-run cross-check that the /metrics scrape agrees with the summed
// per-session CumulativeReport (no lost tickers under saturation).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pdb.h"
#include "server/server.h"
#include "util/check.h"
#include "util/random.h"

namespace pdb {
namespace {

/// Requests each client thread issues per benchmark iteration.
constexpr int kRequestsPerClient = 10;

Database BipartiteDatabase(size_t n) {
  Database db;
  Relation r("R", Schema::Anonymous(1));
  Relation s("S", Schema::Anonymous(2));
  Relation t("T", Schema::Anonymous(1));
  Rng rng(7);
  auto prob = [&] { return 0.1 + 0.8 * rng.NextDouble(); };
  for (size_t i = 1; i <= n; ++i) {
    PDB_CHECK(r.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    PDB_CHECK(t.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    for (size_t j = 1; j <= n; ++j) {
      PDB_CHECK(s.AddTuple({Value(static_cast<int64_t>(i)),
                            Value(static_cast<int64_t>(j))},
                           prob())
                    .ok());
    }
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  PDB_CHECK(db.AddRelation(std::move(t)).ok());
  return db;
}

/// One blocking request/response exchange; returns the HTTP status (0 on
/// connection failure). Body content is drained and discarded.
int Exchange(uint16_t port, const std::string& body,
             const std::string& client_id) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }
  std::string request =
      "POST /query HTTP/1.1\r\nConnection: close\r\n"
      "X-Deadline-Ms: 100\r\n";
  if (!client_id.empty()) request += "X-Client-Id: " + client_id + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  char buffer[4096];
  std::string head;
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    if (head.size() < 64) head.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t sp = head.find(' ');
  return sp == std::string::npos ? 0 : std::atoi(head.c_str() + sp + 1);
}

uint64_t ScrapeCounter(const std::string& metrics, const std::string& name) {
  size_t pos = metrics.find("\n" + name + " ");
  if (pos == std::string::npos) {
    if (metrics.rfind(name + " ", 0) != 0) return 0;
    pos = 0;
  } else {
    pos += 1;
  }
  return std::strtoull(metrics.c_str() + pos + name.size() + 1, nullptr, 10);
}

void BM_ServerSaturation(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));

  ProbDatabase db(BipartiteDatabase(6));
  ServerOptions options;
  // Deliberately under-provisioned so 8..64 clients saturate the server
  // and the overflow is shed rather than queued behind slow work.
  options.admission.max_concurrent = 4;
  options.admission.max_queue = 4;
  options.admission.queue_timeout_ms = 50;
  options.max_deadline_ms = 2'000;
  PdbServer server(&db, options);
  PDB_CHECK(server.Start().ok());
  const uint16_t port = server.port();

  // Every 4th request is the non-hierarchical join (deadline-bounded DPLL
  // then sampling); the rest are cheap safe queries.
  const char* kQueries[] = {"R(x)", "T(y)", "R(x), S(x,y)",
                            "R(x), S(x,y), T(y)"};

  uint64_t ok_total = 0, shed_total = 0, failed_total = 0;
  std::vector<double> admitted_latency_us;
  std::mutex merge_mu;

  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        std::vector<double> latencies;
        uint64_t ok = 0, shed = 0, failed = 0;
        std::string client_id = "bench-" + std::to_string(c % 8);
        for (int i = 0; i < kRequestsPerClient; ++i) {
          auto start = std::chrono::steady_clock::now();
          int status = Exchange(port, kQueries[(c + i) % 4], client_id);
          auto elapsed = std::chrono::steady_clock::now() - start;
          if (status == 200) {
            ++ok;
            latencies.push_back(
                std::chrono::duration<double, std::micro>(elapsed).count());
          } else if (status == 429) {
            ++shed;
          } else {
            ++failed;
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        ok_total += ok;
        shed_total += shed;
        failed_total += failed;
        admitted_latency_us.insert(admitted_latency_us.end(),
                                   latencies.begin(), latencies.end());
      });
    }
    for (auto& w : workers) w.join();
  }

  // Scrape-vs-report agreement: the merged /metrics text must carry exactly
  // the queries the sessions report having served — saturation must not
  // lose tickers.
  std::string metrics = server.MetricsText();
  uint64_t served = 0, rejected = 0;
  server.sessions().ForEachSession([&](const std::string&, Session& session) {
    ExecReport report = session.CumulativeReport();
    served += session.queries_served();
    rejected += report.admission_rejected;
  });
  PDB_CHECK(ScrapeCounter(metrics, "pdb_queries_total") == served);
  PDB_CHECK(ScrapeCounter(metrics, "pdb_admission_rejected_total") ==
            rejected);
  PDB_CHECK(served == ok_total);  // every 200 the clients saw is accounted
  server.Shutdown();

  std::sort(admitted_latency_us.begin(), admitted_latency_us.end());
  double p99 = admitted_latency_us.empty()
                   ? 0.0
                   : admitted_latency_us[static_cast<size_t>(
                         0.99 * (admitted_latency_us.size() - 1))];
  state.counters["ok"] = static_cast<double>(ok_total);
  state.counters["shed_429"] = static_cast<double>(shed_total);
  state.counters["failed"] = static_cast<double>(failed_total);
  state.counters["p99_admitted_us"] = p99;
  state.counters["rps"] = benchmark::Counter(
      static_cast<double>(ok_total + shed_total), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<int64_t>(ok_total + shed_total));
}
BENCHMARK(BM_ServerSaturation)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace pdb

BENCHMARK_MAIN();
