// S1 — pdbd saturation: N client threads (8..64) hammer a live in-process
// PdbServer over real loopback sockets with tight admission limits, mixing
// cheap safe queries with deadline-bounded hard ones. The interesting
// outputs are the counters, not the wall time: admitted vs shed (429)
// requests, the p99 latency of *admitted* requests (load shedding must keep
// it bounded — that is the whole point of fast-failing the overflow), and a
// post-run cross-check that the /metrics scrape agrees with the summed
// per-session CumulativeReport (no lost tickers under saturation).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pdb.h"
#include "server/server.h"
#include "util/check.h"
#include "util/random.h"

namespace pdb {
namespace {

/// Requests each client thread issues per benchmark iteration.
constexpr int kRequestsPerClient = 10;

Database BipartiteDatabase(size_t n) {
  Database db;
  Relation r("R", Schema::Anonymous(1));
  Relation s("S", Schema::Anonymous(2));
  Relation t("T", Schema::Anonymous(1));
  Rng rng(7);
  auto prob = [&] { return 0.1 + 0.8 * rng.NextDouble(); };
  for (size_t i = 1; i <= n; ++i) {
    PDB_CHECK(r.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    PDB_CHECK(t.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    for (size_t j = 1; j <= n; ++j) {
      PDB_CHECK(s.AddTuple({Value(static_cast<int64_t>(i)),
                            Value(static_cast<int64_t>(j))},
                           prob())
                    .ok());
    }
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  PDB_CHECK(db.AddRelation(std::move(t)).ok());
  return db;
}

/// A keep-alive HTTP/1.1 client holding one persistent connection per
/// worker thread. The old per-request connect + "Connection: close" client
/// made the saturation benchmark measure TCP churn (3-way handshakes and
/// TIME_WAIT exhaustion) instead of admission control; with keep-alive,
/// every request after the first rides the warm connection, so the
/// counters isolate the server's shed/admit behaviour. Responses are
/// framed-parsed (Content-Length and chunked alike) — required for reuse,
/// since "read until EOF" only works when the server closes per request.
class BenchClient {
 public:
  explicit BenchClient(uint16_t port) : port_(port) {}
  ~BenchClient() { Disconnect(); }

  BenchClient(const BenchClient&) = delete;
  BenchClient& operator=(const BenchClient&) = delete;

  /// One request/response exchange; returns the HTTP status (0 on
  /// connection failure). Body content is drained and discarded. Retries
  /// once on a fresh connection: a reused socket the server has since
  /// closed (idle timeout, drain) fails the first attempt legitimately.
  int Request(const std::string& body, const std::string& client_id) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (fd_ < 0 && !Connect()) continue;
      int status = RoundTrip(body, client_id);
      if (status != 0) return status;
      Disconnect();
    }
    return 0;
  }

 private:
  bool Connect() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Disconnect();
      return false;
    }
    return true;
  }

  void Disconnect() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

  /// Receives more bytes into buffer_; false on EOF or error.
  bool FillMore() {
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  /// Blocks until buffer_ holds `delimiter`; returns its position or npos.
  size_t ReadUntil(const std::string& delimiter) {
    size_t scanned = 0;
    while (true) {
      size_t pos = buffer_.find(delimiter, scanned);
      if (pos != std::string::npos) return pos;
      scanned = buffer_.size() > delimiter.size()
                    ? buffer_.size() - delimiter.size()
                    : 0;
      if (!FillMore()) return std::string::npos;
    }
  }

  /// Blocks until buffer_ holds at least `n` bytes, then consumes them.
  bool SkipExactly(size_t n) {
    while (buffer_.size() < n) {
      if (!FillMore()) return false;
    }
    buffer_.erase(0, n);
    return true;
  }

  static bool HeaderContains(const std::string& head, const char* name,
                             const char* value) {
    // Case-insensitive "Name: ... value ..." scan, good enough for the
    // fixed header set this server emits.
    std::string lower;
    lower.reserve(head.size());
    for (char c : head) {
      lower.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    size_t pos = lower.find(std::string("\r\n") + name + ":");
    if (pos == std::string::npos) return false;
    size_t eol = lower.find("\r\n", pos + 2);
    return lower.substr(pos, eol - pos).find(value) != std::string::npos;
  }

  /// Sends one request and parses one framed response off the stream.
  /// Returns the HTTP status, or 0 on any transport/framing failure.
  int RoundTrip(const std::string& body, const std::string& client_id) {
    std::string request = "POST /query HTTP/1.1\r\nX-Deadline-Ms: 100\r\n";
    if (!client_id.empty()) request += "X-Client-Id: " + client_id + "\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    request += body;
    size_t sent = 0;
    while (sent < request.size()) {
      ssize_t n =
          ::send(fd_, request.data() + sent, request.size() - sent, 0);
      if (n <= 0) return 0;
      sent += static_cast<size_t>(n);
    }

    size_t head_end = ReadUntil("\r\n\r\n");
    if (head_end == std::string::npos) return 0;
    std::string head = buffer_.substr(0, head_end);
    buffer_.erase(0, head_end + 4);
    size_t sp = head.find(' ');
    int status = sp == std::string::npos ? 0 : std::atoi(head.c_str() + sp + 1);
    if (status == 0) return 0;

    // Drain the body so the next response starts clean on this socket.
    if (HeaderContains(head, "transfer-encoding", "chunked")) {
      while (true) {
        size_t line_end = ReadUntil("\r\n");
        if (line_end == std::string::npos) return 0;
        size_t size = std::strtoull(buffer_.c_str(), nullptr, 16);
        buffer_.erase(0, line_end + 2);
        if (size == 0) {
          // Terminal chunk: consume through the trailing CRLF.
          size_t end = ReadUntil("\r\n");
          if (end == std::string::npos) return 0;
          buffer_.erase(0, end + 2);
          break;
        }
        if (!SkipExactly(size + 2)) return 0;  // chunk data + CRLF
      }
    } else {
      size_t pos = head.find("Content-Length:");
      size_t length =
          pos == std::string::npos
              ? 0
              : std::strtoull(head.c_str() + pos + 15, nullptr, 10);
      if (!SkipExactly(length)) return 0;
    }

    if (HeaderContains(head, "connection", "close")) Disconnect();
    return status;
  }

  uint16_t port_;
  int fd_ = -1;
  std::string buffer_;  ///< received-but-unconsumed bytes
};

uint64_t ScrapeCounter(const std::string& metrics, const std::string& name) {
  size_t pos = metrics.find("\n" + name + " ");
  if (pos == std::string::npos) {
    if (metrics.rfind(name + " ", 0) != 0) return 0;
    pos = 0;
  } else {
    pos += 1;
  }
  return std::strtoull(metrics.c_str() + pos + name.size() + 1, nullptr, 10);
}

void BM_ServerSaturation(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));

  ProbDatabase db(BipartiteDatabase(6));
  ServerOptions options;
  // Deliberately under-provisioned so 8..64 clients saturate the server
  // and the overflow is shed rather than queued behind slow work.
  options.admission.max_concurrent = 4;
  options.admission.max_queue = 4;
  options.admission.queue_timeout_ms = 50;
  options.max_deadline_ms = 2'000;
  PdbServer server(&db, options);
  PDB_CHECK(server.Start().ok());
  const uint16_t port = server.port();

  // Every 4th request is the non-hierarchical join (deadline-bounded DPLL
  // then sampling); the rest are cheap safe queries.
  const char* kQueries[] = {"R(x)", "T(y)", "R(x), S(x,y)",
                            "R(x), S(x,y), T(y)"};

  uint64_t ok_total = 0, shed_total = 0, failed_total = 0;
  std::vector<double> admitted_latency_us;
  std::mutex merge_mu;

  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        BenchClient client(port);
        std::vector<double> latencies;
        uint64_t ok = 0, shed = 0, failed = 0;
        std::string client_id = "bench-" + std::to_string(c % 8);
        for (int i = 0; i < kRequestsPerClient; ++i) {
          auto start = std::chrono::steady_clock::now();
          int status = client.Request(kQueries[(c + i) % 4], client_id);
          auto elapsed = std::chrono::steady_clock::now() - start;
          if (status == 200) {
            ++ok;
            latencies.push_back(
                std::chrono::duration<double, std::micro>(elapsed).count());
          } else if (status == 429) {
            ++shed;
          } else {
            ++failed;
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        ok_total += ok;
        shed_total += shed;
        failed_total += failed;
        admitted_latency_us.insert(admitted_latency_us.end(),
                                   latencies.begin(), latencies.end());
      });
    }
    for (auto& w : workers) w.join();
  }

  // Scrape-vs-report agreement: the merged /metrics text must carry exactly
  // the queries the sessions report having served — saturation must not
  // lose tickers.
  std::string metrics = server.MetricsText();
  uint64_t served = 0, rejected = 0;
  server.sessions().ForEachSession([&](const std::string&, Session& session) {
    ExecReport report = session.CumulativeReport();
    served += session.queries_served();
    rejected += report.admission_rejected;
  });
  PDB_CHECK(ScrapeCounter(metrics, "pdb_queries_total") == served);
  PDB_CHECK(ScrapeCounter(metrics, "pdb_admission_rejected_total") ==
            rejected);
  PDB_CHECK(served == ok_total);  // every 200 the clients saw is accounted
  server.Shutdown();

  std::sort(admitted_latency_us.begin(), admitted_latency_us.end());
  double p99 = admitted_latency_us.empty()
                   ? 0.0
                   : admitted_latency_us[static_cast<size_t>(
                         0.99 * (admitted_latency_us.size() - 1))];
  state.counters["ok"] = static_cast<double>(ok_total);
  state.counters["shed_429"] = static_cast<double>(shed_total);
  state.counters["failed"] = static_cast<double>(failed_total);
  state.counters["p99_admitted_us"] = p99;
  state.counters["rps"] = benchmark::Counter(
      static_cast<double>(ok_total + shed_total), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<int64_t>(ok_total + shed_total));
}
BENCHMARK(BM_ServerSaturation)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace pdb

BENCHMARK_MAIN();
