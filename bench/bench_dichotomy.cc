// E4/E9 — Theorem 4.3 (dichotomy for self-join-free CQs), Theorem 4.1, and
// the §2 dual-query equivalence.
//
// For a battery of queries the bench reports: hierarchical? engine-safe?
// lifted == ground truth? The dichotomy predicts hierarchical <=> safe for
// self-join-free CQs; for UCQs safety is decided by the full rule set. The
// dual-query table checks P(Q) == 1 - P(rewritten ¬Q) structure via the
// engine's universal-query path.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>

#include "util/string_util.h"

#include "boolean/lineage.h"
#include "lifted/lifted.h"
#include "lifted/safety.h"
#include "logic/parser.h"
#include "wmc/dpll.h"
#include "workloads.h"

namespace pdb {
namespace {

Ucq UcqOf(const char* text) {
  auto fo = ParseUcqShorthand(text);
  PDB_CHECK(fo.ok());
  auto ucq = FoToUcq(*fo);
  PDB_CHECK(ucq.ok());
  return *ucq;
}

double GroundTruth(const Ucq& ucq, const Database& db) {
  FormulaManager mgr;
  auto lineage = BuildUcqLineage(ucq, db, &mgr);
  PDB_CHECK(lineage.ok());
  DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
  return *counter.Compute(lineage->root);
}

void PrintDichotomyTable() {
  bench::Section("E4: dichotomy battery (Theorems 4.1/4.3)");
  struct Row {
    const char* query;
    bool self_join_free;
  };
  const Row rows[] = {
      {"R(x), S(x,y)", true},
      {"S(x,y), T(y)", true},
      {"R(x), S(x,y), U(x,y)", true},
      {"R(x), T(y)", true},
      {"R(x), S(x,y), T(y)", true},      // H0's dual: #P-hard
      {"R(x), S(x,y), U(y,z)", true},    // non-hierarchical
      {"S(x,y), S(y,z)", false},         // hierarchical but hard [17]
      {"S(x,y), S(x,z)", false},         // redundant self-join: minimizes safe
      {"R(x), S(x,y), T(u), S(u,v)", false},  // Q_J: needs I/E
      {"R(x), S(x,y) ; S(u,v), T(v)", false},  // hard union
      {"R(x), S(x,y) ; T(u), S(u,v)", false},  // safe union
  };
  std::printf("%-38s %6s %6s %10s %10s\n", "query", "hier", "safe",
              "lifted", "truth");
  Rng rng(17);
  Database db = bench::RandomDatabase(
      {{"R", 1}, {"S", 2}, {"T", 1}, {"U", 2}}, 3, 0.7, &rng);
  size_t dichotomy_violations = 0;
  for (const Row& row : rows) {
    Ucq ucq = UcqOf(row.query);
    bool hierarchical =
        ucq.size() == 1 ? IsHierarchical(ucq.disjuncts()[0]) : false;
    bool safe = IsSafeUcq(ucq);
    auto lifted = LiftedProbability(ucq, db);
    double truth = GroundTruth(ucq, db);
    std::printf("%-38s %6s %6s %10s %10.6f\n", row.query,
                ucq.size() == 1 ? (hierarchical ? "yes" : "no") : "-",
                safe ? "yes" : "no",
                lifted.ok() ? StrFormat("%.6f", *lifted).c_str() : "fail",
                truth);
    if (lifted.ok()) PDB_CHECK(std::abs(*lifted - truth) < 1e-9);
    // Theorem 4.3: for self-join-free single CQs, safe <=> hierarchical.
    if (row.self_join_free && ucq.size() == 1 && safe != hierarchical) {
      ++dichotomy_violations;
    }
  }
  std::printf("dichotomy violations (sjf CQs, safe != hierarchical): %zu\n",
              dichotomy_violations);
}

void PrintDualTable() {
  bench::Section("E9: dual queries (paper §2)");
  // For the unate universal sentence and its existential negation the
  // engine must return complementary probabilities.
  Rng rng(23);
  Database db = bench::H0Database(4, &rng);
  struct Pair {
    const char* universal;
    const char* negation;
  };
  const Pair pairs[] = {
      {"forall x forall y (S(x,y) => R(x))",
       "exists x exists y (S(x,y) & !R(x))"},
      {"forall x (R(x) | T(x))", "exists x (!R(x) & !T(x))"},
  };
  std::printf("%-42s %12s %12s %8s\n", "sentence", "P(forall)", "1-P(neg)",
              "match");
  for (const Pair& pair : pairs) {
    double p1 = *LiftedProbabilityFo(*ParseFo(pair.universal), db);
    double p2 = *LiftedProbabilityFo(*ParseFo(pair.negation), db);
    std::printf("%-42s %12.6f %12.6f %8s\n", pair.universal, p1, 1.0 - p2,
                std::abs(p1 - (1.0 - p2)) < 1e-9 ? "yes" : "NO");
  }
}

void BM_HierarchyDecision(benchmark::State& state) {
  // The decision procedure itself is cheap (paper: AC0); time it.
  Ucq ucq = UcqOf("R(x), S(x,y), U(x,y), T(u), V(u,v)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsHierarchical(ucq.disjuncts()[0]));
  }
}
BENCHMARK(BM_HierarchyDecision);

void BM_SafetyDecision(benchmark::State& state) {
  Ucq ucq = UcqOf("R(x), S(x,y), T(u), S(u,v)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSafeUcq(ucq));
  }
}
BENCHMARK(BM_SafetyDecision);

}  // namespace
}  // namespace pdb

int main(int argc, char** argv) {
  pdb::PrintDichotomyTable();
  pdb::PrintDualTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
