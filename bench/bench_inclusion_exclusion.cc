// E5 — Theorem 5.1 and the Q_J example (paper §5).
//
// Q_J = exists x y u v (R(x) & S(x,y) & T(u) & S(u,v)) is in polynomial
// time, but the basic lifted rules alone cannot compute it: the
// inclusion-exclusion rule is required. The bench shows:
//   (a) the ablation: with I/E the engine solves Q_J, without it it fails;
//   (b) polynomial lifted scaling vs exponential DPLL scaling on the same
//       instances;
//   (c) cancellation at work on the paper's AB | BC | CD pattern, where the
//       #P-hard term ABCD is cancelled and never evaluated.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "boolean/lineage.h"
#include "lifted/lifted.h"
#include "logic/parser.h"
#include "wmc/dpll.h"
#include "workloads.h"

namespace pdb {
namespace {

constexpr char kQj[] = "R(x), S(x,y), T(u), S(u,v)";

Ucq UcqOf(const char* text) {
  auto fo = ParseUcqShorthand(text);
  PDB_CHECK(fo.ok());
  auto ucq = FoToUcq(*fo);
  PDB_CHECK(ucq.ok());
  return *ucq;
}

void PrintAblationTable() {
  bench::Section("E5a: the inclusion-exclusion rule is necessary for Q_J");
  Rng rng(31);
  Database db = bench::H0Database(4, &rng);
  Ucq qj = UcqOf(kQj);
  LiftedStats stats;
  auto with_ie = LiftedProbability(qj, db, {}, &stats);
  PDB_CHECK(with_ie.ok());
  LiftedOptions no_ie;
  no_ie.use_inclusion_exclusion = false;
  auto without_ie = LiftedProbability(qj, db, no_ie);
  FormulaManager mgr;
  auto lineage = BuildUcqLineage(qj, db, &mgr);
  DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
  double truth = *counter.Compute(lineage->root);
  std::printf("basic rules + I/E : %.9f (I/E applications: %llu)\n",
              *with_ie,
              static_cast<unsigned long long>(stats.inclusion_exclusions));
  std::printf("basic rules only  : %s\n",
              without_ie.ok() ? "unexpectedly succeeded"
                              : without_ie.status().ToString().c_str());
  std::printf("ground truth      : %.9f  (|diff| = %.2g)\n", truth,
              std::abs(truth - *with_ie));
}

void PrintScalingTable() {
  bench::Section("E5b: lifted polynomial vs grounded exponential on Q_J");
  std::printf("%4s %12s %12s %14s\n", "n", "lifted_ms", "dpll_ms",
              "dpll_decisions");
  Ucq qj = UcqOf(kQj);
  for (size_t n = 2; n <= 7; ++n) {
    Rng rng(n);
    Database db = bench::H0Database(n, &rng);
    auto t0 = std::chrono::steady_clock::now();
    auto lifted = LiftedProbability(qj, db);
    double lifted_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    PDB_CHECK(lifted.ok());
    t0 = std::chrono::steady_clock::now();
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(qj, db, &mgr);
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    auto grounded = counter.Compute(lineage->root);
    double dpll_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    PDB_CHECK(grounded.ok());
    PDB_CHECK(std::abs(*grounded - *lifted) < 1e-9);
    std::printf("%4zu %12.3f %12.3f %14llu\n", n, lifted_ms, dpll_ms,
                static_cast<unsigned long long>(counter.stats().decisions));
  }
  std::printf("(lifted stays flat; DPLL decisions grow exponentially)\n");
}

void PrintCancellationTable() {
  bench::Section("E5c: cancellation — AB | BC | CD with #P-hard ABCD");
  // A = R(x)S(x,y) and D = S(u,v)T(v) make A^D (hence ABCD) #P-hard; B and
  // C are independent unary markers. The I/E expansion cancels ABCD, so the
  // query is computed without ever touching the hard term.
  const char* query =
      "R(x), S(x,y), B0(z) ; B0(z), C0(w) ; C0(w), S(u,v), T(v)";
  Ucq ucq = UcqOf(query);
  Rng rng(41);
  Database db = bench::H0Database(3, &rng);
  Relation b0("B0", Schema::Anonymous(1));
  Relation c0("C0", Schema::Anonymous(1));
  for (int64_t i = 1; i <= 3; ++i) {
    PDB_CHECK(b0.AddTuple({Value(i)}, 0.5).ok());
    PDB_CHECK(c0.AddTuple({Value(i)}, 0.5).ok());
  }
  PDB_CHECK(db.AddRelation(std::move(b0)).ok());
  PDB_CHECK(db.AddRelation(std::move(c0)).ok());
  LiftedStats stats;
  auto lifted = LiftedProbability(ucq, db, {}, &stats);
  FormulaManager mgr;
  auto lineage = BuildUcqLineage(ucq, db, &mgr);
  DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
  double truth = *counter.Compute(lineage->root);
  std::printf("query: %s\n", query);
  if (lifted.ok()) {
    std::printf("lifted: %.9f, truth: %.9f, I/E terms: %llu, cancelled: "
                "%llu\n",
                *lifted, truth,
                static_cast<unsigned long long>(stats.ie_terms_total),
                static_cast<unsigned long long>(stats.ie_terms_cancelled));
    std::printf("(the cancelled terms include the #P-hard ABCD "
                "conjunction)\n");
  } else {
    std::printf("lifted failed: %s\n", lifted.status().ToString().c_str());
  }
}

void BM_QjLifted(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(n);
  Database db = bench::H0Database(n, &rng);
  Ucq qj = UcqOf(kQj);
  for (auto _ : state) {
    auto p = LiftedProbability(qj, db);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_QjLifted)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_QjGrounded(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(n);
  Database db = bench::H0Database(n, &rng);
  Ucq qj = UcqOf(kQj);
  for (auto _ : state) {
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(qj, db, &mgr);
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    auto p = counter.Compute(lineage->root);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_QjGrounded)->Arg(4)->Arg(6);

}  // namespace
}  // namespace pdb

int main(int argc, char** argv) {
  pdb::PrintAblationTable();
  pdb::PrintScalingTable();
  pdb::PrintCancellationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
