/// \file workloads.h
/// \brief Shared workload generators for the experiment benches.
///
/// Every bench regenerates one of the paper's figures/examples/theorem-level
/// claims (see DESIGN.md's experiment index). The synthetic instances here
/// parameterize exactly what the claims depend on: domain size, arity
/// structure and tuple probabilities.

#ifndef PDB_BENCH_WORKLOADS_H_
#define PDB_BENCH_WORKLOADS_H_

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "storage/database.h"
#include "util/check.h"
#include "util/random.h"

namespace pdb::bench {

/// One machine-readable benchmark result row.
struct BenchRecord {
  std::string name;
  double wall_ms = 0.0;         ///< wall-clock time per iteration
  double samples_per_sec = 0.0; ///< 0 when the bench has no sampling rate
  int threads = 1;
};

/// Writes `records` as a JSON array of objects, e.g.
///   [{"name": "BM_X", "wall_ms": 1.5, "samples_per_sec": 2e6, "threads": 4,
///     "hardware_concurrency": 8}]
/// so the perf trajectory is trackable across PRs (diff-friendly: one row
/// per line, fixed key order). `hardware_concurrency` records the machine
/// the row was measured on — thread-scaling numbers are meaningless without
/// it when comparing runs across hosts.
inline void WriteBenchJson(const std::string& path,
                           const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  PDB_CHECK(f != nullptr);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(
        f, "  {\"name\": \"%s\", \"wall_ms\": %.6g, \"samples_per_sec\": %.6g, \"threads\": %d, \"hardware_concurrency\": %d}%s\n",
        r.name.c_str(), r.wall_ms, r.samples_per_sec, r.threads, hw,
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

/// The paper's Figure 1 TID (string constants a1..a4, b1..b6).
inline Database Figure1Database() {
  Database db;
  Relation r("R", Schema({{"x", ValueType::kString}}));
  PDB_CHECK(r.AddTuple({Value("a1")}, 0.3).ok());
  PDB_CHECK(r.AddTuple({Value("a2")}, 0.5).ok());
  PDB_CHECK(r.AddTuple({Value("a3")}, 0.9).ok());
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  Relation s("S",
             Schema({{"x", ValueType::kString}, {"y", ValueType::kString}}));
  PDB_CHECK(s.AddTuple({Value("a1"), Value("b1")}, 0.1).ok());
  PDB_CHECK(s.AddTuple({Value("a1"), Value("b2")}, 0.2).ok());
  PDB_CHECK(s.AddTuple({Value("a2"), Value("b3")}, 0.4).ok());
  PDB_CHECK(s.AddTuple({Value("a2"), Value("b4")}, 0.6).ok());
  PDB_CHECK(s.AddTuple({Value("a2"), Value("b5")}, 0.7).ok());
  PDB_CHECK(s.AddTuple({Value("a4"), Value("b6")}, 0.8).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  return db;
}

/// R(i) for i in [n]; S(i, j) for i in [n], j in [fanout]; probabilities
/// drawn from `rng` or fixed 0.5 when rng is null.
inline Database TwoLevelDatabase(size_t n, size_t fanout, Rng* rng = nullptr) {
  Database db;
  Relation r("R", Schema::Anonymous(1));
  Relation s("S", Schema::Anonymous(2));
  auto prob = [&] { return rng ? 0.1 + 0.8 * rng->NextDouble() : 0.5; };
  for (size_t i = 1; i <= n; ++i) {
    PDB_CHECK(r.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    for (size_t j = 1; j <= fanout; ++j) {
      PDB_CHECK(s.AddTuple({Value(static_cast<int64_t>(i)),
                            Value(static_cast<int64_t>(j))},
                           prob())
                    .ok());
    }
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  return db;
}

/// Complete bipartite H0 instance: R(i), T(j) unary over [n], S(i,j) over
/// [n]x[n].
inline Database H0Database(size_t n, Rng* rng = nullptr) {
  Database db = TwoLevelDatabase(n, n, rng);
  Relation t("T", Schema::Anonymous(1));
  auto prob = [&] { return rng ? 0.1 + 0.8 * rng->NextDouble() : 0.5; };
  for (size_t i = 1; i <= n; ++i) {
    PDB_CHECK(t.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
  }
  PDB_CHECK(db.AddRelation(std::move(t)).ok());
  return db;
}

/// Random TID with the given per-relation arities over an integer domain.
inline Database RandomDatabase(const std::vector<std::pair<std::string, size_t>>&
                                   relations,
                               size_t domain, double presence, Rng* rng) {
  Database db;
  for (const auto& [name, arity] : relations) {
    Relation rel(name, Schema::Anonymous(arity));
    size_t total = 1;
    for (size_t i = 0; i < arity; ++i) total *= domain;
    for (size_t combo = 0; combo < total; ++combo) {
      if (!rng->Bernoulli(presence)) continue;
      Tuple tuple;
      size_t rest = combo;
      for (size_t i = 0; i < arity; ++i) {
        tuple.push_back(Value(static_cast<int64_t>(rest % domain + 1)));
        rest /= domain;
      }
      PDB_CHECK(rel.AddTuple(std::move(tuple), rng->NextDouble()).ok());
    }
    PDB_CHECK(db.AddRelation(std::move(rel)).ok());
  }
  return db;
}

/// Prints a bench section header.
inline void Section(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace pdb::bench

#endif  // PDB_BENCH_WORKLOADS_H_
