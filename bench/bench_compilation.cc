// E7 — Theorem 7.1 and Figure 2: query compilation.
//
// (i)  OBDD sizes: linear in n for the hierarchical CQ R(x),S(x,y) under
//      the hierarchical order; >= (2^n - 1)/n for the non-hierarchical
//      H0 CQ under the best of many orders.
// (ii) lifted vs grounded separation: Q_J is computed by lifted inference
//      in polynomial time, but the decision-DNNF built from the DPLL trace
//      (the trace of *any* DPLL-style run, per Huang–Darwiche) grows
//      exponentially with the domain size.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "boolean/lineage.h"
#include "kc/obdd.h"
#include "kc/order.h"
#include "kc/trace_compiler.h"
#include "lifted/lifted.h"
#include "logic/parser.h"
#include "workloads.h"

namespace pdb {
namespace {

void PrintObddSizes() {
  bench::Section("E7a: OBDD size, hierarchical vs non-hierarchical "
                 "(Thm 7.1(i))");
  auto safe = ParseUcqShorthand("R(x), S(x,y)");
  auto hard = ParseUcqShorthand("R(x), S(x,y), T(y)");
  std::printf("%4s %14s %20s %20s\n", "n", "hier_obdd", "nonhier_obdd",
              "(2^n - 1)/n bound");
  for (size_t n : {2u, 4u, 6u, 8u, 10u}) {
    FormulaManager mgr1;
    Database db1 = bench::TwoLevelDatabase(n, 2);
    auto lin1 = BuildLineage(*safe, db1, &mgr1);
    PDB_CHECK(lin1.ok());
    Obdd obdd1(HierarchicalOrder(*lin1, db1));
    size_t hier = obdd1.Size(*obdd1.Compile(&mgr1, lin1->root));

    FormulaManager mgr2;
    Database db2 = bench::H0Database(n);
    auto lin2 = BuildLineage(*hard, db2, &mgr2);
    PDB_CHECK(lin2.ok());
    // Best size over a sample of random orders plus the structured one.
    size_t best = SIZE_MAX;
    {
      Obdd obdd(HierarchicalOrder(*lin2, db2));
      best = obdd.Size(*obdd.Compile(&mgr2, lin2->root));
    }
    // Random orders explode combinatorially on larger instances (a bad
    // interleaving at n = 8 already exceeds 2^30 nodes); sample them only
    // while affordable — the (2^n-1)/n bound holds for ALL orders anyway,
    // and kc_test checks it exhaustively over every order at small n.
    if (n <= 4) {
      Rng rng(n);
      std::vector<VarId> order = IdentityOrder(lin2->vars.size());
      for (int trial = 0; trial < 8; ++trial) {
        for (size_t i = order.size(); i > 1; --i) {
          std::swap(order[i - 1], order[rng.Uniform(i)]);
        }
        Obdd obdd(order);
        best = std::min(best, obdd.Size(*obdd.Compile(&mgr2, lin2->root)));
      }
    }
    size_t bound = ((size_t{1} << n) - 1) / n;
    std::printf("%4zu %14zu %20zu %20zu%s\n", n, hier, best, bound,
                best >= bound ? "" : "  (BOUND VIOLATED)");
  }
  std::printf("(hierarchical sizes grow linearly: 3 nodes per block)\n");
}

void PrintDecisionDnnfSeparation() {
  bench::Section(
      "E7b: lifted poly time vs exponential decision-DNNF on Q_J "
      "(Thm 7.1(ii) shape)");
  auto qj_fo = ParseUcqShorthand("R(x), S(x,y), T(u), S(u,v)");
  auto qj = FoToUcq(*qj_fo);
  PDB_CHECK(qj.ok());
  std::printf("%4s %8s %14s %14s %12s\n", "n", "vars", "dnnf_nodes",
              "decisions", "lifted_ms");
  size_t prev_nodes = 0;
  for (size_t n = 2; n <= 7; ++n) {
    Database db = bench::H0Database(n);
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(*qj, db, &mgr);
    PDB_CHECK(lineage.ok());
    auto compiled = CompileToDecisionDnnf(
        &mgr, lineage->root, WeightsFromProbabilities(lineage->probs));
    PDB_CHECK(compiled.ok());
    auto t0 = std::chrono::steady_clock::now();
    auto lifted = LiftedProbability(*qj, db);
    double lifted_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    PDB_CHECK(lifted.ok());
    PDB_CHECK(std::abs(*lifted - compiled->probability) < 1e-9);
    size_t nodes = compiled->circuit.Size(compiled->root);
    std::printf("%4zu %8zu %14zu %14llu %12.3f%s\n", n, lineage->vars.size(),
                nodes,
                static_cast<unsigned long long>(compiled->stats.decisions),
                lifted_ms,
                prev_nodes > 0 && nodes > 3 * prev_nodes
                    ? "   (super-poly growth)"
                    : "");
    prev_nodes = nodes;
  }
}

void PrintFigure2() {
  bench::Section("E7c: Figure 2 circuits");
  {
    Circuit c;
    Circuit::Ref z = c.Decision(2, c.False(), c.True());
    Circuit::Ref yz = c.Decision(1, c.False(), z);
    Circuit::Ref y_or_z = c.Decision(1, z, c.True());
    Circuit::Ref root = c.Decision(0, yz, y_or_z);
    std::printf("Fig 2(a) FBDD ((!X)YZ | XY | XZ): %zu nodes, FBDD-valid: "
                "%s, #models = %s\n",
                c.Size(root), c.ValidateFbdd(root).ok() ? "yes" : "no",
                c.CountModels(root).ToString().c_str());
  }
  {
    Circuit c;
    Circuit::Ref y = c.Decision(1, c.False(), c.True());
    Circuit::Ref z = c.Decision(2, c.False(), c.True());
    Circuit::Ref u = c.Decision(3, c.False(), c.True());
    Circuit::Ref root =
        c.Decision(0, c.And({y, z, u}),
                   c.And({z, c.Decision(1, u, c.True())}));
    std::printf("Fig 2(b) decision-DNNF ((!X)YZU | XYZ | XZU): %zu nodes, "
                "valid: %s, #models = %s\n",
                c.Size(root),
                c.ValidateDecisionDnnf(root).ok() ? "yes" : "no",
                c.CountModels(root).ToString().c_str());
  }
}

void BM_ObddCompileHierarchical(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database db = bench::TwoLevelDatabase(n, 2);
  auto q = ParseUcqShorthand("R(x), S(x,y)");
  for (auto _ : state) {
    FormulaManager mgr;
    auto lineage = BuildLineage(*q, db, &mgr);
    Obdd obdd(HierarchicalOrder(*lineage, db));
    auto root = obdd.Compile(&mgr, lineage->root);
    benchmark::DoNotOptimize(root);
  }
}
BENCHMARK(BM_ObddCompileHierarchical)->Arg(8)->Arg(32)->Arg(128);

void BM_DecisionDnnfQj(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Database db = bench::H0Database(n);
  auto qj = FoToUcq(*ParseUcqShorthand("R(x), S(x,y), T(u), S(u,v)"));
  for (auto _ : state) {
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(*qj, db, &mgr);
    auto compiled = CompileToDecisionDnnf(
        &mgr, lineage->root, WeightsFromProbabilities(lineage->probs));
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_DecisionDnnfQj)->Arg(3)->Arg(5);

}  // namespace
}  // namespace pdb

int main(int argc, char** argv) {
  pdb::PrintObddSizes();
  pdb::PrintDecisionDnnfSeparation();
  pdb::PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
