// E6 — Theorem 6.1: extensional plans give oblivious bounds.
//
// (a) regenerates the paper's Plan_1/Plan_2 example (footnote 9) on the
//     Figure 1 database;
// (b) measures, over random TIDs, how often and how tightly
//     Plan_{D1} <= p_D(Q) <= Plan_D brackets the truth for the #P-hard H0
//     query, including the min-over-all-plans upper bound;
// (c) times plan execution vs exact inference.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "boolean/lineage.h"
#include "logic/parser.h"
#include "plans/bounds.h"
#include "plans/enumerate.h"
#include "wmc/dpll.h"
#include "workloads.h"

namespace pdb {
namespace {

ConjunctiveQuery CqOf(const char* text) {
  auto fo = ParseUcqShorthand(text);
  PDB_CHECK(fo.ok());
  auto ucq = FoToUcq(*fo);
  PDB_CHECK(ucq.ok() && ucq->size() == 1);
  return ucq->disjuncts()[0];
}

double GroundTruth(const ConjunctiveQuery& cq, const Database& db) {
  FormulaManager mgr;
  auto lineage = BuildUcqLineage(Ucq({cq}), db, &mgr);
  PDB_CHECK(lineage.ok());
  DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
  return *counter.Compute(lineage->root);
}

void PrintFootnote9() {
  bench::Section("E6a: Plan_1 / Plan_2 example (paper §6, footnote 9)");
  Database db = bench::Figure1Database();
  ConjunctiveQuery cq = CqOf("R(x), S(x,y)");
  auto plans = EnumerateAllPlans(cq);
  PDB_CHECK(plans.ok());
  double truth = GroundTruth(cq, db);
  const double p1 = 0.3, p2 = 0.5, q1 = 0.1, q2 = 0.2, q3 = 0.4, q4 = 0.6,
               q5 = 0.7;
  double paper_plan1 = 1 - (1 - p1 * q1) * (1 - p1 * q2) * (1 - p2 * q3) *
                               (1 - p2 * q4) * (1 - p2 * q5);
  double paper_plan2 =
      1 - (1 - p1 * (1 - (1 - q1) * (1 - q2))) *
              (1 - p2 * (1 - (1 - q3) * (1 - q4) * (1 - q5)));
  std::printf("paper Plan_1 (unsafe) = %.9f\n", paper_plan1);
  std::printf("paper Plan_2 (safe)   = %.9f\n", paper_plan2);
  for (const PlanPtr& plan : *plans) {
    double value = *ExecuteBooleanPlan(plan, db);
    std::printf("  %-70s = %.9f%s\n", plan->ToString().c_str(), value,
                std::abs(value - truth) < 1e-12 ? "  (safe: == truth)" : "");
  }
  std::printf("true probability      = %.9f\n", truth);
}

void PrintBoundsQuality() {
  bench::Section("E6b: oblivious bounds on the #P-hard H0 query");
  ConjunctiveQuery h0 = CqOf("R(x), S(x,y), T(y)");
  std::printf("%6s %10s %10s %10s %10s %8s\n", "seed", "lower", "truth",
              "upper", "gap", "inside");
  size_t violations = 0;
  double total_gap = 0;
  const int kTrials = 12;
  for (int seed = 0; seed < kTrials; ++seed) {
    Rng rng(seed * 131 + 11);
    Database db = bench::RandomDatabase({{"R", 1}, {"S", 2}, {"T", 1}}, 4,
                                        0.8, &rng);
    auto bounds = ComputePlanBounds(h0, db);
    PDB_CHECK(bounds.ok());
    double truth = GroundTruth(h0, db);
    bool inside =
        bounds->lower <= truth + 1e-9 && truth <= bounds->upper + 1e-9;
    if (!inside) ++violations;
    total_gap += bounds->upper - bounds->lower;
    std::printf("%6d %10.6f %10.6f %10.6f %10.6f %8s\n", seed, bounds->lower,
                truth, bounds->upper, bounds->upper - bounds->lower,
                inside ? "yes" : "NO");
  }
  std::printf("bracket violations: %zu / %d, mean gap: %.6f\n", violations,
              kTrials, total_gap / kTrials);
}

void PrintMinOverPlans() {
  bench::Section("E6c: min-over-plans beats any single plan");
  ConjunctiveQuery h0 = CqOf("R(x), S(x,y), T(y)");
  double sum_single = 0, sum_min = 0, sum_truth = 0;
  const int kTrials = 12;
  for (int seed = 0; seed < kTrials; ++seed) {
    Rng rng(seed * 977 + 5);
    Database db = bench::RandomDatabase({{"R", 1}, {"S", 2}, {"T", 1}}, 4,
                                        0.8, &rng);
    auto plans = EnumerateAllPlans(h0);
    PDB_CHECK(plans.ok());
    double first = *ExecuteBooleanPlan((*plans)[0], db);
    double best = first;
    for (const PlanPtr& plan : *plans) {
      best = std::min(best, *ExecuteBooleanPlan(plan, db));
    }
    sum_single += first;
    sum_min += best;
    sum_truth += GroundTruth(h0, db);
  }
  std::printf("mean first-plan upper bound : %.6f\n", sum_single / kTrials);
  std::printf("mean min-over-plans bound   : %.6f\n", sum_min / kTrials);
  std::printf("mean true probability       : %.6f\n", sum_truth / kTrials);
}

void BM_SafePlanExecution(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  Database db = bench::TwoLevelDatabase(n, 4, &rng);
  ConjunctiveQuery cq = CqOf("R(x), S(x,y)");
  auto plan = BuildSafePlan(cq);
  PDB_CHECK(plan.ok());
  for (auto _ : state) {
    auto p = ExecuteBooleanPlan(*plan, db);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_SafePlanExecution)->Arg(16)->Arg(64)->Arg(256);

void BM_AllPlansBounds(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  Database db = bench::H0Database(n, &rng);
  ConjunctiveQuery h0 = CqOf("R(x), S(x,y), T(y)");
  for (auto _ : state) {
    auto bounds = ComputePlanBounds(h0, db);
    benchmark::DoNotOptimize(bounds);
  }
}
BENCHMARK(BM_AllPlansBounds)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace pdb

int main(int argc, char** argv) {
  pdb::PrintFootnote9();
  pdb::PrintBoundsQuality();
  pdb::PrintMinOverPlans();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
