file(REMOVE_RECURSE
  "CMakeFiles/bench_symmetric.dir/bench_symmetric.cc.o"
  "CMakeFiles/bench_symmetric.dir/bench_symmetric.cc.o.d"
  "bench_symmetric"
  "bench_symmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_symmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
