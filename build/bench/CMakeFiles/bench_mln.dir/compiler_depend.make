# Empty compiler generated dependencies file for bench_mln.
# This may be replaced when dependencies are built.
