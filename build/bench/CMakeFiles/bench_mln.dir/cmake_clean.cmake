file(REMOVE_RECURSE
  "CMakeFiles/bench_mln.dir/bench_mln.cc.o"
  "CMakeFiles/bench_mln.dir/bench_mln.cc.o.d"
  "bench_mln"
  "bench_mln.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mln.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
