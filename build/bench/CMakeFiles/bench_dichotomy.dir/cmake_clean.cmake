file(REMOVE_RECURSE
  "CMakeFiles/bench_dichotomy.dir/bench_dichotomy.cc.o"
  "CMakeFiles/bench_dichotomy.dir/bench_dichotomy.cc.o.d"
  "bench_dichotomy"
  "bench_dichotomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dichotomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
