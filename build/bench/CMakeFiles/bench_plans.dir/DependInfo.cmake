
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_plans.cc" "bench/CMakeFiles/bench_plans.dir/bench_plans.cc.o" "gcc" "bench/CMakeFiles/bench_plans.dir/bench_plans.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_plans.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_kc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_mln.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_symmetric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_openworld.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_lifted.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_bid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_wmc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_incomplete.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_boolean.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
