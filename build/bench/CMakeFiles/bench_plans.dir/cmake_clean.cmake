file(REMOVE_RECURSE
  "CMakeFiles/bench_plans.dir/bench_plans.cc.o"
  "CMakeFiles/bench_plans.dir/bench_plans.cc.o.d"
  "bench_plans"
  "bench_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
