file(REMOVE_RECURSE
  "CMakeFiles/bench_compilation.dir/bench_compilation.cc.o"
  "CMakeFiles/bench_compilation.dir/bench_compilation.cc.o.d"
  "bench_compilation"
  "bench_compilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
