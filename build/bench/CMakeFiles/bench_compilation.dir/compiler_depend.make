# Empty compiler generated dependencies file for bench_compilation.
# This may be replaced when dependencies are built.
