file(REMOVE_RECURSE
  "CMakeFiles/bench_inclusion_exclusion.dir/bench_inclusion_exclusion.cc.o"
  "CMakeFiles/bench_inclusion_exclusion.dir/bench_inclusion_exclusion.cc.o.d"
  "bench_inclusion_exclusion"
  "bench_inclusion_exclusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inclusion_exclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
