# Empty dependencies file for bench_example21.
# This may be replaced when dependencies are built.
