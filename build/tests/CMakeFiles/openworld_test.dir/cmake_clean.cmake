file(REMOVE_RECURSE
  "CMakeFiles/openworld_test.dir/openworld_test.cc.o"
  "CMakeFiles/openworld_test.dir/openworld_test.cc.o.d"
  "openworld_test"
  "openworld_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openworld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
