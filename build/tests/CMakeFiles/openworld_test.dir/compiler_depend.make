# Empty compiler generated dependencies file for openworld_test.
# This may be replaced when dependencies are built.
