file(REMOVE_RECURSE
  "CMakeFiles/plans_test.dir/plans_test.cc.o"
  "CMakeFiles/plans_test.dir/plans_test.cc.o.d"
  "plans_test"
  "plans_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
