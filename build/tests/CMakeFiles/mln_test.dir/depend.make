# Empty dependencies file for mln_test.
# This may be replaced when dependencies are built.
