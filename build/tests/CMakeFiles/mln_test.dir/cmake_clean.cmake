file(REMOVE_RECURSE
  "CMakeFiles/mln_test.dir/mln_test.cc.o"
  "CMakeFiles/mln_test.dir/mln_test.cc.o.d"
  "mln_test"
  "mln_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mln_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
