file(REMOVE_RECURSE
  "CMakeFiles/kc_test.dir/kc_test.cc.o"
  "CMakeFiles/kc_test.dir/kc_test.cc.o.d"
  "kc_test"
  "kc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
