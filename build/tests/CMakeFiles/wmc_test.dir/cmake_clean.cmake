file(REMOVE_RECURSE
  "CMakeFiles/wmc_test.dir/wmc_test.cc.o"
  "CMakeFiles/wmc_test.dir/wmc_test.cc.o.d"
  "wmc_test"
  "wmc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
