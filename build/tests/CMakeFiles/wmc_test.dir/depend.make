# Empty dependencies file for wmc_test.
# This may be replaced when dependencies are built.
