# Empty dependencies file for incomplete_test.
# This may be replaced when dependencies are built.
