file(REMOVE_RECURSE
  "CMakeFiles/incomplete_test.dir/incomplete_test.cc.o"
  "CMakeFiles/incomplete_test.dir/incomplete_test.cc.o.d"
  "incomplete_test"
  "incomplete_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incomplete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
