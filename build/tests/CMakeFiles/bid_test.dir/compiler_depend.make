# Empty compiler generated dependencies file for bid_test.
# This may be replaced when dependencies are built.
