file(REMOVE_RECURSE
  "CMakeFiles/bid_test.dir/bid_test.cc.o"
  "CMakeFiles/bid_test.dir/bid_test.cc.o.d"
  "bid_test"
  "bid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
