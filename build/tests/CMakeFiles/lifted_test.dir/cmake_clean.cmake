file(REMOVE_RECURSE
  "CMakeFiles/lifted_test.dir/lifted_test.cc.o"
  "CMakeFiles/lifted_test.dir/lifted_test.cc.o.d"
  "lifted_test"
  "lifted_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
