# Empty dependencies file for lifted_test.
# This may be replaced when dependencies are built.
