# Empty compiler generated dependencies file for knowledge_compilation.
# This may be replaced when dependencies are built.
