file(REMOVE_RECURSE
  "CMakeFiles/knowledge_compilation.dir/knowledge_compilation.cpp.o"
  "CMakeFiles/knowledge_compilation.dir/knowledge_compilation.cpp.o.d"
  "knowledge_compilation"
  "knowledge_compilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_compilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
