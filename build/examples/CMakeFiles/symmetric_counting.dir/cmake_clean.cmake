file(REMOVE_RECURSE
  "CMakeFiles/symmetric_counting.dir/symmetric_counting.cpp.o"
  "CMakeFiles/symmetric_counting.dir/symmetric_counting.cpp.o.d"
  "symmetric_counting"
  "symmetric_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetric_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
