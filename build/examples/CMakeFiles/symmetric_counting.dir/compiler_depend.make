# Empty compiler generated dependencies file for symmetric_counting.
# This may be replaced when dependencies are built.
