file(REMOVE_RECURSE
  "CMakeFiles/mln_inference.dir/mln_inference.cpp.o"
  "CMakeFiles/mln_inference.dir/mln_inference.cpp.o.d"
  "mln_inference"
  "mln_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mln_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
