# Empty compiler generated dependencies file for mln_inference.
# This may be replaced when dependencies are built.
