# Empty compiler generated dependencies file for pdb_core.
# This may be replaced when dependencies are built.
