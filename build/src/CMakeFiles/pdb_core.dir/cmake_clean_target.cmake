file(REMOVE_RECURSE
  "libpdb_core.a"
)
