file(REMOVE_RECURSE
  "CMakeFiles/pdb_core.dir/core/pdb.cc.o"
  "CMakeFiles/pdb_core.dir/core/pdb.cc.o.d"
  "libpdb_core.a"
  "libpdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
