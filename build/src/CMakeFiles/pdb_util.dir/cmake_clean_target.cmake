file(REMOVE_RECURSE
  "libpdb_util.a"
)
