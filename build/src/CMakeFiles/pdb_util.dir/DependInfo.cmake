
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/big_int.cc" "src/CMakeFiles/pdb_util.dir/util/big_int.cc.o" "gcc" "src/CMakeFiles/pdb_util.dir/util/big_int.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/pdb_util.dir/util/random.cc.o" "gcc" "src/CMakeFiles/pdb_util.dir/util/random.cc.o.d"
  "/root/repo/src/util/rational.cc" "src/CMakeFiles/pdb_util.dir/util/rational.cc.o" "gcc" "src/CMakeFiles/pdb_util.dir/util/rational.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/pdb_util.dir/util/status.cc.o" "gcc" "src/CMakeFiles/pdb_util.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/pdb_util.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/pdb_util.dir/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
