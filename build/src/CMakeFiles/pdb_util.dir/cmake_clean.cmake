file(REMOVE_RECURSE
  "CMakeFiles/pdb_util.dir/util/big_int.cc.o"
  "CMakeFiles/pdb_util.dir/util/big_int.cc.o.d"
  "CMakeFiles/pdb_util.dir/util/random.cc.o"
  "CMakeFiles/pdb_util.dir/util/random.cc.o.d"
  "CMakeFiles/pdb_util.dir/util/rational.cc.o"
  "CMakeFiles/pdb_util.dir/util/rational.cc.o.d"
  "CMakeFiles/pdb_util.dir/util/status.cc.o"
  "CMakeFiles/pdb_util.dir/util/status.cc.o.d"
  "CMakeFiles/pdb_util.dir/util/string_util.cc.o"
  "CMakeFiles/pdb_util.dir/util/string_util.cc.o.d"
  "libpdb_util.a"
  "libpdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
