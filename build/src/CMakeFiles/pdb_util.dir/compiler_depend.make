# Empty compiler generated dependencies file for pdb_util.
# This may be replaced when dependencies are built.
