file(REMOVE_RECURSE
  "libpdb_symmetric.a"
)
