# Empty compiler generated dependencies file for pdb_symmetric.
# This may be replaced when dependencies are built.
