file(REMOVE_RECURSE
  "CMakeFiles/pdb_symmetric.dir/symmetric/fo2.cc.o"
  "CMakeFiles/pdb_symmetric.dir/symmetric/fo2.cc.o.d"
  "CMakeFiles/pdb_symmetric.dir/symmetric/symmetric.cc.o"
  "CMakeFiles/pdb_symmetric.dir/symmetric/symmetric.cc.o.d"
  "libpdb_symmetric.a"
  "libpdb_symmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_symmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
