file(REMOVE_RECURSE
  "CMakeFiles/pdb_openworld.dir/openworld/openworld.cc.o"
  "CMakeFiles/pdb_openworld.dir/openworld/openworld.cc.o.d"
  "libpdb_openworld.a"
  "libpdb_openworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_openworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
