file(REMOVE_RECURSE
  "libpdb_openworld.a"
)
