# Empty compiler generated dependencies file for pdb_openworld.
# This may be replaced when dependencies are built.
