# Empty compiler generated dependencies file for pdb_mln.
# This may be replaced when dependencies are built.
