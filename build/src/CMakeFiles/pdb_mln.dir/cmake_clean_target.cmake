file(REMOVE_RECURSE
  "libpdb_mln.a"
)
