file(REMOVE_RECURSE
  "CMakeFiles/pdb_mln.dir/mln/mln.cc.o"
  "CMakeFiles/pdb_mln.dir/mln/mln.cc.o.d"
  "CMakeFiles/pdb_mln.dir/mln/translate.cc.o"
  "CMakeFiles/pdb_mln.dir/mln/translate.cc.o.d"
  "libpdb_mln.a"
  "libpdb_mln.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_mln.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
