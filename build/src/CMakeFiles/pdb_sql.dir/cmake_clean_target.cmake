file(REMOVE_RECURSE
  "libpdb_sql.a"
)
