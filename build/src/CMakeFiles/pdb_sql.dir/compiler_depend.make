# Empty compiler generated dependencies file for pdb_sql.
# This may be replaced when dependencies are built.
