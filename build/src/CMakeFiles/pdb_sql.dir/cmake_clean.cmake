file(REMOVE_RECURSE
  "CMakeFiles/pdb_sql.dir/sql/sql.cc.o"
  "CMakeFiles/pdb_sql.dir/sql/sql.cc.o.d"
  "libpdb_sql.a"
  "libpdb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
