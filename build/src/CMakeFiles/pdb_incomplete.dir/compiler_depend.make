# Empty compiler generated dependencies file for pdb_incomplete.
# This may be replaced when dependencies are built.
