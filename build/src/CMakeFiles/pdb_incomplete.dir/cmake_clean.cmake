file(REMOVE_RECURSE
  "CMakeFiles/pdb_incomplete.dir/incomplete/incomplete.cc.o"
  "CMakeFiles/pdb_incomplete.dir/incomplete/incomplete.cc.o.d"
  "libpdb_incomplete.a"
  "libpdb_incomplete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_incomplete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
