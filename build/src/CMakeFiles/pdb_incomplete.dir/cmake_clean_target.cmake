file(REMOVE_RECURSE
  "libpdb_incomplete.a"
)
