# Empty compiler generated dependencies file for pdb_bid.
# This may be replaced when dependencies are built.
