file(REMOVE_RECURSE
  "CMakeFiles/pdb_bid.dir/bid/bid.cc.o"
  "CMakeFiles/pdb_bid.dir/bid/bid.cc.o.d"
  "libpdb_bid.a"
  "libpdb_bid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_bid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
