file(REMOVE_RECURSE
  "libpdb_bid.a"
)
