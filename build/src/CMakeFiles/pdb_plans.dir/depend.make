# Empty dependencies file for pdb_plans.
# This may be replaced when dependencies are built.
