file(REMOVE_RECURSE
  "CMakeFiles/pdb_plans.dir/plans/bounds.cc.o"
  "CMakeFiles/pdb_plans.dir/plans/bounds.cc.o.d"
  "CMakeFiles/pdb_plans.dir/plans/enumerate.cc.o"
  "CMakeFiles/pdb_plans.dir/plans/enumerate.cc.o.d"
  "CMakeFiles/pdb_plans.dir/plans/plan.cc.o"
  "CMakeFiles/pdb_plans.dir/plans/plan.cc.o.d"
  "libpdb_plans.a"
  "libpdb_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
