
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plans/bounds.cc" "src/CMakeFiles/pdb_plans.dir/plans/bounds.cc.o" "gcc" "src/CMakeFiles/pdb_plans.dir/plans/bounds.cc.o.d"
  "/root/repo/src/plans/enumerate.cc" "src/CMakeFiles/pdb_plans.dir/plans/enumerate.cc.o" "gcc" "src/CMakeFiles/pdb_plans.dir/plans/enumerate.cc.o.d"
  "/root/repo/src/plans/plan.cc" "src/CMakeFiles/pdb_plans.dir/plans/plan.cc.o" "gcc" "src/CMakeFiles/pdb_plans.dir/plans/plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdb_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_boolean.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
