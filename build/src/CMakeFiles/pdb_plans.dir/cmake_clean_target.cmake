file(REMOVE_RECURSE
  "libpdb_plans.a"
)
