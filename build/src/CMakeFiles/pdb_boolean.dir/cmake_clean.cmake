file(REMOVE_RECURSE
  "CMakeFiles/pdb_boolean.dir/boolean/formula.cc.o"
  "CMakeFiles/pdb_boolean.dir/boolean/formula.cc.o.d"
  "CMakeFiles/pdb_boolean.dir/boolean/lineage.cc.o"
  "CMakeFiles/pdb_boolean.dir/boolean/lineage.cc.o.d"
  "libpdb_boolean.a"
  "libpdb_boolean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_boolean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
