file(REMOVE_RECURSE
  "libpdb_boolean.a"
)
