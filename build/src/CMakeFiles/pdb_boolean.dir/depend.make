# Empty dependencies file for pdb_boolean.
# This may be replaced when dependencies are built.
