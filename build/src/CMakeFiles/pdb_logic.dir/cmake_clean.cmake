file(REMOVE_RECURSE
  "CMakeFiles/pdb_logic.dir/logic/analysis.cc.o"
  "CMakeFiles/pdb_logic.dir/logic/analysis.cc.o.d"
  "CMakeFiles/pdb_logic.dir/logic/containment.cc.o"
  "CMakeFiles/pdb_logic.dir/logic/containment.cc.o.d"
  "CMakeFiles/pdb_logic.dir/logic/cq.cc.o"
  "CMakeFiles/pdb_logic.dir/logic/cq.cc.o.d"
  "CMakeFiles/pdb_logic.dir/logic/fo.cc.o"
  "CMakeFiles/pdb_logic.dir/logic/fo.cc.o.d"
  "CMakeFiles/pdb_logic.dir/logic/parser.cc.o"
  "CMakeFiles/pdb_logic.dir/logic/parser.cc.o.d"
  "libpdb_logic.a"
  "libpdb_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
