# Empty compiler generated dependencies file for pdb_logic.
# This may be replaced when dependencies are built.
