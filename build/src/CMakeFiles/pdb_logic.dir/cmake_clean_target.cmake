file(REMOVE_RECURSE
  "libpdb_logic.a"
)
