file(REMOVE_RECURSE
  "CMakeFiles/pdb_kc.dir/kc/circuit.cc.o"
  "CMakeFiles/pdb_kc.dir/kc/circuit.cc.o.d"
  "CMakeFiles/pdb_kc.dir/kc/obdd.cc.o"
  "CMakeFiles/pdb_kc.dir/kc/obdd.cc.o.d"
  "CMakeFiles/pdb_kc.dir/kc/order.cc.o"
  "CMakeFiles/pdb_kc.dir/kc/order.cc.o.d"
  "CMakeFiles/pdb_kc.dir/kc/trace_compiler.cc.o"
  "CMakeFiles/pdb_kc.dir/kc/trace_compiler.cc.o.d"
  "libpdb_kc.a"
  "libpdb_kc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_kc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
