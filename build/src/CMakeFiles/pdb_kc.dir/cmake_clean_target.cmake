file(REMOVE_RECURSE
  "libpdb_kc.a"
)
