
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kc/circuit.cc" "src/CMakeFiles/pdb_kc.dir/kc/circuit.cc.o" "gcc" "src/CMakeFiles/pdb_kc.dir/kc/circuit.cc.o.d"
  "/root/repo/src/kc/obdd.cc" "src/CMakeFiles/pdb_kc.dir/kc/obdd.cc.o" "gcc" "src/CMakeFiles/pdb_kc.dir/kc/obdd.cc.o.d"
  "/root/repo/src/kc/order.cc" "src/CMakeFiles/pdb_kc.dir/kc/order.cc.o" "gcc" "src/CMakeFiles/pdb_kc.dir/kc/order.cc.o.d"
  "/root/repo/src/kc/trace_compiler.cc" "src/CMakeFiles/pdb_kc.dir/kc/trace_compiler.cc.o" "gcc" "src/CMakeFiles/pdb_kc.dir/kc/trace_compiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdb_wmc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_boolean.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
