# Empty dependencies file for pdb_kc.
# This may be replaced when dependencies are built.
