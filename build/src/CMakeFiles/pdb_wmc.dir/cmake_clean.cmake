file(REMOVE_RECURSE
  "CMakeFiles/pdb_wmc.dir/wmc/dpll.cc.o"
  "CMakeFiles/pdb_wmc.dir/wmc/dpll.cc.o.d"
  "CMakeFiles/pdb_wmc.dir/wmc/enumeration.cc.o"
  "CMakeFiles/pdb_wmc.dir/wmc/enumeration.cc.o.d"
  "CMakeFiles/pdb_wmc.dir/wmc/montecarlo.cc.o"
  "CMakeFiles/pdb_wmc.dir/wmc/montecarlo.cc.o.d"
  "CMakeFiles/pdb_wmc.dir/wmc/weights.cc.o"
  "CMakeFiles/pdb_wmc.dir/wmc/weights.cc.o.d"
  "libpdb_wmc.a"
  "libpdb_wmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_wmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
