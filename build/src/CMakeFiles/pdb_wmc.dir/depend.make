# Empty dependencies file for pdb_wmc.
# This may be replaced when dependencies are built.
