file(REMOVE_RECURSE
  "libpdb_wmc.a"
)
