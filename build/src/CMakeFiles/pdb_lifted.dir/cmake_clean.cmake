file(REMOVE_RECURSE
  "CMakeFiles/pdb_lifted.dir/lifted/lifted.cc.o"
  "CMakeFiles/pdb_lifted.dir/lifted/lifted.cc.o.d"
  "CMakeFiles/pdb_lifted.dir/lifted/safety.cc.o"
  "CMakeFiles/pdb_lifted.dir/lifted/safety.cc.o.d"
  "libpdb_lifted.a"
  "libpdb_lifted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_lifted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
