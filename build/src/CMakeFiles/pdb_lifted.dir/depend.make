# Empty dependencies file for pdb_lifted.
# This may be replaced when dependencies are built.
