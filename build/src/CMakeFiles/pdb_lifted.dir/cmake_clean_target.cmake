file(REMOVE_RECURSE
  "libpdb_lifted.a"
)
