file(REMOVE_RECURSE
  "CMakeFiles/pdb_storage.dir/storage/csv.cc.o"
  "CMakeFiles/pdb_storage.dir/storage/csv.cc.o.d"
  "CMakeFiles/pdb_storage.dir/storage/database.cc.o"
  "CMakeFiles/pdb_storage.dir/storage/database.cc.o.d"
  "CMakeFiles/pdb_storage.dir/storage/relation.cc.o"
  "CMakeFiles/pdb_storage.dir/storage/relation.cc.o.d"
  "CMakeFiles/pdb_storage.dir/storage/schema.cc.o"
  "CMakeFiles/pdb_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/pdb_storage.dir/storage/value.cc.o"
  "CMakeFiles/pdb_storage.dir/storage/value.cc.o.d"
  "libpdb_storage.a"
  "libpdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
