# Empty dependencies file for pdb_storage.
# This may be replaced when dependencies are built.
