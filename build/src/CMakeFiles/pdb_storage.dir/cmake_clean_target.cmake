file(REMOVE_RECURSE
  "libpdb_storage.a"
)
